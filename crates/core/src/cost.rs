//! The transfer-cost model — Section 3.1, Equations (1)–(8).
//!
//! Costs are in tariff-weighted wire bytes (with `bR = bS = 1` they are
//! plain bytes). Counts are `f64` because the algorithms also evaluate the
//! model on *estimated* (fractional) counts — UpJoin keeps `|Dw|/4`
//! estimates for datasets it has labelled uniform.
//!
//! The model predicts what the meters in `asj-net` will measure: the same
//! packetization (`TB`), the same message framing constants from the codec.
//! Prediction error — e.g. the uniformity assumption inside `Tdq` — is
//! intentional and exactly the paper's: decisions are made on estimates,
//! results are measured on the wire.

use asj_geom::Rect;
use asj_net::codec::{
    ANSWER_BYTES, BUCKET_FRAME_BYTES, BUCKET_REQ_HEADER_BYTES, COUNTS_HEADER_BYTES,
    COUNT_ENTRY_BYTES, EPS_QUERY_BYTES, MULTI_COUNT_HEADER_BYTES, OBJECTS_HEADER_BYTES, OBJ_BYTES,
    OBJ_BYTES_V2_EST, QUERY_BYTES, RECT_BYTES,
};
use asj_net::{NetConfig, PacketModel};

/// Cost model for one deployment (packetization + tariffs + device buffer).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    packet: PacketModel,
    /// Per-byte tariff of the R link (`bR`).
    pub tariff_r: f64,
    /// Per-byte tariff of the S link (`bS`).
    pub tariff_s: f64,
    /// Device buffer capacity in objects; `c1 = ∞` beyond it.
    pub buffer_capacity: usize,
    /// Statistics go out as batched `MultiCount` messages
    /// ([`NetConfig::batched_stats`]); split-cost estimates must price
    /// what the meter will actually measure.
    pub batched_stats: bool,
    /// Shard fan-out of the R side: a query to a fleet of `f` shards pays
    /// up to `f` framed sub-requests and `f` framed responses, which the
    /// meters measure and the estimates below price. `1.0` for flat
    /// deployments — every formula then reduces bit-exactly to the
    /// single-server model. The factor is an upper bound: the router's
    /// bounds pruning usually contacts fewer shards.
    pub fanout_r: f64,
    /// Shard fan-out of the S side.
    pub fanout_s: f64,
    /// Replica fan-out of the fleets (≥ 1): update batches are broadcast
    /// to every replica of a shard — each replica receives its own copy
    /// of the sub-batch and answers its own framed ack — so the *update*
    /// round trip is amplified `n`-fold. Read traffic is **not**
    /// amplified: exactly one replica serves each scatter slot, so every
    /// query formula above is independent of this factor. `1.0` (an
    /// unreplicated deployment) prices updates bit-exactly like the
    /// replica-less model.
    pub replica_fanout: f64,
    /// Price multiplier on statistics (COUNT/`MultiCount`) rounds,
    /// `(0, 1]`. With the client cache enabled, repeated statistics cost
    /// nothing on the wire; decisions should price a round at its
    /// *expected* cost, i.e. discounted by the observed hit rate (see
    /// [`CostModel::with_cache_discount`]). `1.0` — a bit-exact no-op —
    /// without a cache.
    pub stats_discount: f64,
    /// Price multiplier on `WINDOW` downloads, `(0, 1]`; same idea for
    /// the cache's window tier.
    pub window_discount: f64,
    /// Estimated wire bytes of one object in a `WINDOW`/ε-RANGE response
    /// frame. Exactly [`OBJ_BYTES`] on v1 links (bit-exact — the v1
    /// layout is fixed-width); the codec's published [`OBJ_BYTES_V2_EST`]
    /// when the deployment negotiates wire v2, whose frames are
    /// variable-width (delta-varint ids, quantized-or-escaped
    /// coordinates). Decisions price the expected v2 density; reported
    /// bytes always come from the meters. Probe *uploads* and bucket
    /// frames keep pricing [`OBJ_BYTES`]: v2 compacts only the object
    /// response stream, not request payloads or bucket framing.
    pub object_bytes: f64,
    /// Price multiplier for expected retransmissions on a lossy fleet,
    /// ≥ 1: every packetized transfer ([`CostModel::tb`]) is priced at
    /// its *expected delivered* cost, i.e. scaled by the expected attempt
    /// count of the link's retry loop (see
    /// [`CostModel::expected_attempts`]). `1.0` — a bit-exact no-op —
    /// on reliable links, which keeps fault-free decisions byte-for-byte
    /// identical to the undecorated model.
    pub retry_factor: f64,
}

impl CostModel {
    pub fn new(net: &NetConfig, buffer_capacity: usize) -> Self {
        CostModel {
            packet: net.packet,
            tariff_r: net.tariff_r,
            tariff_s: net.tariff_s,
            buffer_capacity,
            batched_stats: net.batched_stats,
            fanout_r: 1.0,
            fanout_s: 1.0,
            replica_fanout: 1.0,
            stats_discount: 1.0,
            window_discount: 1.0,
            object_bytes: if net.wire_v2 {
                OBJ_BYTES_V2_EST
            } else {
                OBJ_BYTES as f64
            },
            retry_factor: 1.0,
        }
    }

    /// Prices retransmissions: every round trip costs `factor` times its
    /// wire bytes, where `factor` is the expected attempt count of the
    /// deployment's retry loop — derive it with
    /// [`CostModel::expected_attempts`] from the fault plan's drop rate
    /// and [`asj_net::RetryPolicy`] budget. Must be ≥ 1 and finite;
    /// `with_retry_factor(1.0)` is a bit-exact no-op.
    pub fn with_retry_factor(mut self, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "retry factor is an expected attempt count, at least 1"
        );
        self.retry_factor = factor;
        self
    }

    /// Expected attempts issued per request under iid loss `drop_rate`
    /// with a budget of `max_attempts`: attempt `k + 1` is issued iff the
    /// first `k` all failed, so `E = Σ pᵏ = (1 − pⁿ)/(1 − p)` — exactly
    /// `1.0` on a reliable link or a single-attempt budget, approaching
    /// `1/(1 − p)` as the budget grows.
    pub fn expected_attempts(drop_rate: f64, max_attempts: u32) -> f64 {
        assert!(
            (0.0..1.0).contains(&drop_rate),
            "drop rate must be in [0, 1)"
        );
        assert!(max_attempts >= 1, "the first attempt is always issued");
        if drop_rate == 0.0 {
            return 1.0;
        }
        (1.0 - drop_rate.powi(max_attempts as i32)) / (1.0 - drop_rate)
    }

    /// Sets the per-side shard fan-out factors (≥ 1).
    pub fn with_fanout(mut self, fanout_r: f64, fanout_s: f64) -> Self {
        assert!(fanout_r >= 1.0 && fanout_s >= 1.0, "fan-out is at least 1");
        self.fanout_r = fanout_r;
        self.fanout_s = fanout_s;
        self
    }

    /// Sets the replica fan-out (≥ 1) — the update-broadcast
    /// amplification of a replicated fleet. `with_replica_fanout(1.0)`
    /// is a bit-exact no-op: every formula of the model, including
    /// [`CostModel::update_round_trip`], then reduces to the
    /// replica-less pricing.
    pub fn with_replica_fanout(mut self, n: f64) -> Self {
        assert!(n >= 1.0, "replica fan-out is at least 1");
        self.replica_fanout = n;
        self
    }

    /// Wire cost of delivering one update batch of `payload` request
    /// bytes to a single shard, unweighted: the batch goes to every
    /// replica (same bytes each) and every replica answers one framed
    /// ack, so the plain round trip is amplified by the replica
    /// fan-out. Queries never pay this factor — reads are served by
    /// exactly one replica.
    pub fn update_round_trip(&self, payload: f64) -> f64 {
        self.replica_fanout * (self.tb(payload) + self.tb(ANSWER_BYTES as f64))
    }

    /// Applies client-cache hit-rate discounts to the statistics and
    /// window prices so operator decisions track what the meters will
    /// actually measure: a statistics round expected to hit the cache
    /// with rate `h` costs `(1 − h)` of its wire price. Multipliers must
    /// lie in `(0, 1]`; `with_cache_discount(1.0, 1.0)` is a bit-exact
    /// no-op (every price is multiplied by exactly `1.0`), which keeps
    /// cache-off decisions byte-for-byte identical to the undecorated
    /// model. Callers derive the multipliers from observed hit rates with
    /// Laplace smoothing (never exactly 0), so prices stay positive and
    /// recursion never becomes "free".
    pub fn with_cache_discount(mut self, stats: f64, window: f64) -> Self {
        assert!(
            stats > 0.0 && stats <= 1.0 && window > 0.0 && window <= 1.0,
            "discounts are price multipliers in (0, 1]"
        );
        self.stats_discount = stats;
        self.window_discount = window;
        self
    }

    /// `TB` of Eq. (1) on fractional byte counts (estimates round up to
    /// whole packets, like the real link would).
    pub fn tb(&self, payload: f64) -> f64 {
        let cap = self.packet.payload_per_packet() as f64;
        let packets = (payload / cap).ceil().max(1.0);
        self.retry_factor * (payload + packets * self.packet.header_bytes as f64)
    }

    /// One aggregate (COUNT) round trip on one link, unweighted —
    /// Eq. (7): query up, scalar answer down.
    pub fn taq(&self) -> f64 {
        self.tb(QUERY_BYTES as f64) + self.tb(ANSWER_BYTES as f64)
    }

    /// One batched `MultiCount` round trip carrying `k` probe windows on
    /// one link, unweighted — the companion of Eq. (7) for the batched
    /// statistics protocol: one framed request up, one framed count
    /// vector down.
    pub fn taq_batched(&self, k: u32) -> f64 {
        self.tb(MULTI_COUNT_HEADER_BYTES as f64 + k as f64 * RECT_BYTES as f64)
            + self.tb(COUNTS_HEADER_BYTES as f64 + k as f64 * COUNT_ENTRY_BYTES as f64)
    }

    /// Wire cost of counting `probes` windows on one link, unweighted,
    /// under whichever statistics protocol is active: `probes · Taq`
    /// per-query, or one `taq_batched(probes)` round trip when batched —
    /// scaled by the cache's statistics discount (`1.0` without a cache).
    pub fn stats_round(&self, probes: u32) -> f64 {
        self.stats_discount
            * if self.batched_stats {
                self.taq_batched(probes)
            } else {
                probes as f64 * self.taq()
            }
    }

    /// Tariff- and fan-out-weighted cost of one statistics round sent to
    /// both sides: each of a fleet's shards receives its own framed
    /// request and answers with its own framed response, so the per-link
    /// round is multiplied by the side's fan-out factor.
    pub fn stats_round_both(&self, probes: u32) -> f64 {
        self.stats_round(probes) * (self.fanout_r * self.tariff_r + self.fanout_s * self.tariff_s)
    }

    /// The wire cost of one 2×2 repartitioning round of statistics on
    /// both links — the paper's `2k²·Taq` with `k = 2`: four quadrant
    /// COUNTs to each server (or one batched `MultiCount` each), times
    /// the shard fan-out on each side.
    pub fn split_stats_cost(&self) -> f64 {
        self.stats_round_both(4)
    }

    /// Wire bytes of a `WINDOW` download of `n` objects on one link,
    /// unweighted: query up + object stream down.
    pub fn window_download(&self, n: f64) -> f64 {
        self.window_download_fanned(n, 1.0)
    }

    /// [`CostModel::window_download`] against a fleet of `fanout` shards:
    /// the query fans out to every shard, the `n` objects come back split
    /// evenly across `fanout` framed responses, the whole round scaled by
    /// the cache's window discount. With `fanout = 1` and no discount
    /// this is bit-exactly the flat formula.
    pub fn window_download_fanned(&self, n: f64, fanout: f64) -> f64 {
        self.window_discount
            * (fanout * self.tb(QUERY_BYTES as f64)
                + fanout * self.tb(OBJECTS_HEADER_BYTES as f64 + (n / fanout) * self.object_bytes))
    }

    /// `c1(w)` — HBSJ: download both windows, join on the device
    /// (Eq. 2). `None` when the buffer cannot hold both.
    pub fn c1(&self, count_r: f64, count_s: f64) -> Option<f64> {
        if count_r + count_s > self.buffer_capacity as f64 {
            return None;
        }
        Some(self.c1_unchecked(count_r, count_s))
    }

    /// `c1` without the feasibility check — MobiJoin's `c4` heuristic
    /// needs it (the paper's Figure 2(b) flaw depends on it).
    pub fn c1_unchecked(&self, count_r: f64, count_s: f64) -> f64 {
        self.tariff_r * self.window_download_fanned(count_r, self.fanout_r)
            + self.tariff_s * self.window_download_fanned(count_s, self.fanout_s)
    }

    /// Expected qualifying partners of one ε-probe into a window holding
    /// `count_inner` objects, assuming uniformity (the `π·ε²/(wx·wy)·|Sw|`
    /// of Eq. 3), clamped to the window population.
    pub fn expected_matches(&self, w: &Rect, count_inner: f64, eps: f64) -> f64 {
        let area = w.area();
        if area <= 0.0 {
            return count_inner;
        }
        (std::f64::consts::PI * eps * eps / area * count_inner).min(count_inner)
    }

    /// NLSJ cost with the given outer/inner orientation (Eq. 4, or Eq. 6
    /// when `bucket`): download the outer window, probe the inner server
    /// once per outer object (or once in bulk), receive the matches.
    ///
    /// `c2(w)` is `nlsj(w, |Rw|, |Sw|, bR, bS, fR, fS, …)`; `c3(w)` swaps
    /// the roles. Fan-out enters the outer download (fleet framing) and
    /// the bucket submission (the probe set is sub-batched across the
    /// inner fleet's shards). Both probe paths assume each ε-probe
    /// reaches exactly one inner shard — probes are ε-scale, far smaller
    /// than a shard cell. The router actually duplicates a probe into
    /// *every* shard whose advertised bounds its ε-expanded MBR
    /// intersects, so near cell edges (or when straddlers widen a shard's
    /// bounds) the estimate undershoots the meter; like the paper's own
    /// uniformity assumption, this is a deliberate estimation error, and
    /// the reported bytes always come from the meters.
    #[allow(clippy::too_many_arguments)]
    pub fn nlsj(
        &self,
        w: &Rect,
        count_outer: f64,
        count_inner: f64,
        tariff_outer: f64,
        tariff_inner: f64,
        fanout_outer: f64,
        fanout_inner: f64,
        eps: f64,
        bucket: bool,
    ) -> f64 {
        let mu = self.expected_matches(w, count_inner, eps);
        let outer_download = tariff_outer * self.window_download_fanned(count_outer, fanout_outer);
        if bucket {
            // Upload every outer object to the inner fleet, sub-batched
            // per shard; each shard answers with its own framed response
            // (Eqs. 5–6, shard framing multiplied by the fan-out).
            let per_shard = count_outer / fanout_inner;
            let upload = fanout_inner
                * self.tb(BUCKET_REQ_HEADER_BYTES as f64 + per_shard * OBJ_BYTES as f64);
            let response = fanout_inner
                * self.tb(OBJECTS_HEADER_BYTES as f64
                    + per_shard * (BUCKET_FRAME_BYTES as f64 + mu * OBJ_BYTES as f64));
            outer_download + tariff_inner * (upload + response)
        } else {
            // One ε-RANGE round trip per outer object (Eqs. 3–4).
            let per_probe = self.tb(EPS_QUERY_BYTES as f64)
                + self.tb(OBJECTS_HEADER_BYTES as f64 + mu * self.object_bytes);
            outer_download + tariff_inner * count_outer * per_probe
        }
    }

    /// `c4(w)` under MobiJoin's optimistic heuristic (Section 3.2):
    /// `2k²` aggregate queries plus the assumption that the window is
    /// uniform and every quadrant finishes with one (unchecked) HBSJ.
    pub fn c4_mobijoin(&self, count_r: f64, count_s: f64, k: u32) -> f64 {
        let cells = (k * k) as f64;
        let stats = self.stats_round_both(k * k);
        let per_cell = self.c1_unchecked(count_r / cells, count_s / cells);
        stats + cells * per_cell
    }

    /// `c1` where a window that overflows the buffer is costed as a
    /// recursive 2×2 decomposition (SrJoin's reading: "if all the points
    /// can not fit into the memory, HBSJ is recursively executed"): the
    /// same object bytes plus the aggregate queries of the estimated
    /// decomposition.
    ///
    /// The statistics term walks the uniform recursion directly: every
    /// window whose (estimated) population overflows the buffer is split,
    /// paying one [`CostModel::split_stats_cost`]; its four quarters carry
    /// a fourth of the population each. A unit test pins this against a
    /// simulation of the actual 2×2 recursion's COUNT count — the earlier
    /// closed form computed levels via `log(4)`/`ceil`, whose FP rounding
    /// could buy a whole spurious level of 4^L windows near exact powers
    /// of four.
    pub fn c1_decomposed(&self, count_r: f64, count_s: f64) -> f64 {
        let base = self.c1_unchecked(count_r, count_s);
        let cap = self.buffer_capacity.max(1) as f64;
        let mut splits = 0.0;
        let mut level_windows = 1.0;
        let mut per_window = count_r + count_s;
        while per_window > cap {
            splits += level_windows;
            level_windows *= 4.0;
            per_window /= 4.0;
        }
        base + splits * self.split_stats_cost()
    }

    /// "`|Dw|` is large" gate of UpJoin — inequality (10):
    /// `TB(|Dw|·Bobj) > 3·Taq`, with `Bobj` the active wire version's
    /// object density.
    pub fn worth_more_stats(&self, count: f64) -> bool {
        self.tb(count * self.object_bytes) > 3.0 * self.taq()
    }

    /// SrJoin's "dataset must be large" threshold (Fig. 5 line 16).
    pub fn cheap_threshold(&self) -> f64 {
        3.0 * self.taq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(buffer: usize) -> CostModel {
        CostModel::new(&NetConfig::default(), buffer)
    }

    fn w() -> Rect {
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn tb_matches_packet_model_on_integers() {
        let m = model(800);
        let p = PacketModel::default();
        for bytes in [0u64, 1, 100, 1460, 1461, 20_000] {
            assert_eq!(m.tb(bytes as f64), p.tb(bytes) as f64, "bytes={bytes}");
        }
    }

    #[test]
    fn c1_infeasible_beyond_buffer() {
        let m = model(100);
        assert!(m.c1(50.0, 50.0).is_some());
        assert!(m.c1(50.0, 51.0).is_none());
        // Unchecked version always answers.
        assert!(m.c1_unchecked(500.0, 500.0) > 0.0);
    }

    #[test]
    fn c1_grows_with_counts() {
        let m = model(10_000);
        let small = m.c1(10.0, 10.0).unwrap();
        let large = m.c1(1000.0, 1000.0).unwrap();
        assert!(large > small * 10.0);
    }

    #[test]
    fn expected_matches_clamped() {
        let m = model(800);
        // Tiny eps → few matches; eps covering the window → everything.
        assert!(m.expected_matches(&w(), 1000.0, 10.0) < 1.0);
        assert_eq!(m.expected_matches(&w(), 1000.0, 10_000.0), 1000.0);
        assert_eq!(m.expected_matches(&w(), 0.0, 10.0), 0.0);
    }

    #[test]
    fn bucket_nlsj_cheaper_than_single_for_many_outers() {
        let m = model(800);
        // 500 outer probes: per-probe headers dominate the single form.
        let single = m.nlsj(&w(), 500.0, 1000.0, 1.0, 1.0, 1.0, 1.0, 50.0, false);
        let bucket = m.nlsj(&w(), 500.0, 1000.0, 1.0, 1.0, 1.0, 1.0, 50.0, true);
        assert!(
            bucket < single,
            "bucket {bucket} should beat single {single}"
        );
    }

    #[test]
    fn nlsj_prefers_smaller_outer() {
        let m = model(800);
        // |R| = 10, |S| = 1000: probing with R as outer is much cheaper.
        let c2 = m.nlsj(&w(), 10.0, 1000.0, 1.0, 1.0, 1.0, 1.0, 50.0, false);
        let c3 = m.nlsj(&w(), 1000.0, 10.0, 1.0, 1.0, 1.0, 1.0, 50.0, false);
        assert!(c2 < c3);
    }

    #[test]
    fn tariffs_weight_sides() {
        let net = NetConfig {
            tariff_r: 10.0,
            ..NetConfig::default()
        };
        let m = CostModel::new(&net, 10_000);
        // Downloading from R is now 10× more expensive; c3 (download S,
        // probe R) pays the probes on R but still beats downloading R
        // wholesale when R is big.
        let c1 = m.c1(1000.0, 10.0).unwrap();
        let cheap = m.nlsj(&w(), 10.0, 1000.0, 1.0, 10.0, 1.0, 1.0, 50.0, false);
        assert!(cheap < c1);
    }

    #[test]
    fn c4_heuristic_components() {
        let m = model(800);
        let c4 = m.c4_mobijoin(1000.0, 1000.0, 2);
        // At least the 8 aggregate queries.
        assert!(c4 >= 8.0 * m.taq());
        // And the per-quadrant HBSJ estimates ignore feasibility: the
        // quadrant counts (250+250) fit the 800 buffer here, but even with
        // buffer 10 the estimate must not blow up to infinity.
        let tiny = CostModel::new(&NetConfig::default(), 10);
        assert!(tiny.c4_mobijoin(1000.0, 1000.0, 2).is_finite());
    }

    #[test]
    fn worth_more_stats_threshold() {
        let m = model(800);
        assert!(!m.worth_more_stats(1.0));
        assert!(m.worth_more_stats(100.0));
        // Threshold sits near TB(n·20) = 3·Taq → n ≈ 14.
        let boundary = (1..100).find(|&n| m.worth_more_stats(n as f64)).unwrap();
        assert!((10..20).contains(&boundary), "boundary {boundary}");
    }

    #[test]
    fn taq_matches_paper_shape() {
        let m = model(800);
        // (BH+BQ) + (BH+BA) with BQ=17, BA=9, BH=40.
        assert_eq!(m.taq(), (40.0 + 17.0) + (40.0 + 9.0));
    }

    fn batched_model(buffer: usize) -> CostModel {
        CostModel::new(&NetConfig::default().with_batched_stats(true), buffer)
    }

    #[test]
    fn taq_batched_beats_per_query_for_a_quadrant_round() {
        let m = model(800);
        // One MultiCount of 4 windows: (BH + 5 + 4·16) + (BH + 5 + 4·8).
        assert_eq!(m.taq_batched(4), (40.0 + 69.0) + (40.0 + 37.0));
        assert!(m.taq_batched(4) < 4.0 * m.taq());
        // Huge batches still pay multi-packet headers, never less than
        // the payload itself.
        assert!(m.taq_batched(10_000) > 10_000.0 * RECT_BYTES as f64);
    }

    #[test]
    fn stats_round_switches_on_capability() {
        let single = model(800);
        let batched = batched_model(800);
        assert_eq!(single.stats_round(4), 4.0 * single.taq());
        assert_eq!(batched.stats_round(4), batched.taq_batched(4));
        assert!(batched.split_stats_cost() < single.split_stats_cost());
        // With both tariffs at 1, a split costs the round on both links.
        assert_eq!(single.split_stats_cost(), 8.0 * single.taq());
    }

    /// Simulates the actual 2×2 recursion under the uniformity assumption:
    /// every window whose population overflows the buffer splits once
    /// (8 quadrant COUNTs — one `split_stats_cost`) and hands a quarter of
    /// its population to each child.
    fn simulated_decomposition_stats(m: &CostModel, total: f64) -> f64 {
        fn splits(total: f64, cap: f64) -> f64 {
            if total <= cap {
                0.0
            } else {
                1.0 + 4.0 * splits(total / 4.0, cap)
            }
        }
        splits(total, m.buffer_capacity as f64) * m.split_stats_cost()
    }

    #[test]
    fn c1_decomposed_matches_recursion_simulation() {
        for m in [model(800), model(100), batched_model(800)] {
            for (r, s) in [
                (100.0, 100.0),       // fits: no stats at all
                (500.0, 301.0),       // barely overflows 800
                (1600.0, 1600.0),     // total = 4·cap exactly (800)
                (25_600.0, 25_600.0), // total = 64·cap exactly (800)
                (3_000.0, 10_000.0),
                (123_456.0, 789.0),
            ] {
                let got = m.c1_decomposed(r, s) - m.c1_unchecked(r, s);
                let want = simulated_decomposition_stats(&m, r + s);
                assert_eq!(
                    got, want,
                    "stats mismatch for r={r} s={s} cap={}",
                    m.buffer_capacity
                );
            }
        }
    }

    #[test]
    fn c1_decomposed_fits_is_plain_c1() {
        let m = model(800);
        assert_eq!(m.c1_decomposed(400.0, 400.0), m.c1_unchecked(400.0, 400.0));
        assert!(m.c1_decomposed(500.0, 500.0) > m.c1_unchecked(500.0, 500.0));
    }

    #[test]
    fn fanout_one_is_bit_exactly_the_flat_model() {
        let flat = model(800);
        let fanned = model(800).with_fanout(1.0, 1.0);
        for (r, s) in [(10.0, 10.0), (333.0, 97.0), (0.0, 5.0)] {
            assert_eq!(flat.c1_unchecked(r, s), fanned.c1_unchecked(r, s));
            assert_eq!(flat.c1(r, s), fanned.c1(r, s));
        }
        assert_eq!(flat.split_stats_cost(), fanned.split_stats_cost());
        assert_eq!(
            flat.window_download(50.0),
            fanned.window_download_fanned(50.0, 1.0)
        );
        assert_eq!(
            flat.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true),
            fanned.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true)
        );
    }

    #[test]
    fn fanout_scales_stats_and_framing_but_not_payload() {
        let flat = model(800);
        let fleet = model(800).with_fanout(4.0, 2.0);
        // Statistics fan out per shard on each side: 4× on R, 2× on S.
        assert_eq!(fleet.split_stats_cost(), flat.stats_round(4) * (4.0 + 2.0));
        // A window download to a fleet pays fan-out × query and framing
        // but streams the same object payload.
        let one = flat.window_download(100.0);
        let four = fleet.window_download_fanned(100.0, 4.0);
        assert!(four > one);
        assert!(
            four - one < 4.0 * flat.tb(QUERY_BYTES as f64) + 4.0 * 45.0,
            "only headers and framing may grow"
        );
        // c1 combines both sides' fan-outs.
        assert!(fleet.c1_unchecked(100.0, 100.0) > flat.c1_unchecked(100.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "fan-out is at least 1")]
    fn fanout_below_one_rejected() {
        model(800).with_fanout(0.5, 1.0);
    }

    #[test]
    fn unit_replica_fanout_is_bit_exact_noop() {
        let flat = model(800);
        let replicated = model(800).with_replica_fanout(1.0);
        for payload in [0.0, 9.0, 1460.5, 20_000.0] {
            assert_eq!(
                flat.update_round_trip(payload),
                replicated.update_round_trip(payload)
            );
        }
        // Reads never pay the replica factor at any fan-out.
        let heavy = model(800).with_replica_fanout(3.0);
        assert_eq!(flat.taq(), heavy.taq());
        assert_eq!(flat.c1(100.0, 100.0), heavy.c1(100.0, 100.0));
        assert_eq!(flat.split_stats_cost(), heavy.split_stats_cost());
        assert_eq!(
            flat.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true),
            heavy.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true)
        );
    }

    #[test]
    fn replica_fanout_amplifies_update_broadcasts_linearly() {
        let one = model(800);
        let three = model(800).with_replica_fanout(3.0);
        assert_eq!(
            three.update_round_trip(500.0),
            3.0 * one.update_round_trip(500.0)
        );
        assert_eq!(
            one.update_round_trip(500.0),
            one.tb(500.0) + one.tb(ANSWER_BYTES as f64)
        );
    }

    #[test]
    #[should_panic(expected = "replica fan-out is at least 1")]
    fn replica_fanout_below_one_rejected() {
        model(800).with_replica_fanout(0.5);
    }

    #[test]
    fn cache_discount_scales_stats_and_window_prices() {
        let flat = model(800);
        let discounted = model(800).with_cache_discount(0.5, 0.25);
        assert_eq!(discounted.stats_round(4), 0.5 * flat.stats_round(4));
        assert_eq!(discounted.split_stats_cost(), 0.5 * flat.split_stats_cost());
        assert_eq!(
            discounted.window_download(100.0),
            0.25 * flat.window_download(100.0)
        );
        assert_eq!(
            discounted.c1_unchecked(50.0, 50.0),
            0.25 * flat.c1_unchecked(50.0, 50.0)
        );
        // Probe traffic (ε-RANGE round trips) is not window traffic: only
        // the outer download discounts.
        let d = discounted.nlsj(&w(), 10.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, false);
        let f = flat.nlsj(&w(), 10.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, false);
        assert!(d < f);
        assert_eq!(f - d, 0.75 * flat.window_download(10.0));
    }

    #[test]
    fn unit_discount_is_bit_exact_noop() {
        let a = model(800);
        let b = model(800).with_cache_discount(1.0, 1.0);
        assert_eq!(a.stats_round(7), b.stats_round(7));
        assert_eq!(a.c1(100.0, 100.0), b.c1(100.0, 100.0));
        assert_eq!(
            a.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true),
            b.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true)
        );
    }

    #[test]
    #[should_panic(expected = "price multipliers")]
    fn zero_discount_rejected() {
        model(800).with_cache_discount(0.0, 1.0);
    }

    #[test]
    fn unit_retry_factor_is_bit_exact_noop() {
        let a = model(800);
        let b = model(800).with_retry_factor(1.0);
        for bytes in [0.0, 1.0, 100.0, 1460.5, 20_000.0] {
            assert_eq!(a.tb(bytes), b.tb(bytes));
        }
        assert_eq!(a.taq(), b.taq());
        assert_eq!(a.c1(100.0, 100.0), b.c1(100.0, 100.0));
        assert_eq!(
            a.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true),
            b.nlsj(&w(), 50.0, 100.0, 1.0, 1.0, 1.0, 1.0, 20.0, true)
        );
    }

    #[test]
    fn retry_factor_prices_expected_attempts() {
        // E = (1 − pⁿ)/(1 − p): half the requests retry once at p = 0.5
        // with a budget of 2.
        assert_eq!(CostModel::expected_attempts(0.5, 2), 1.5);
        assert_eq!(CostModel::expected_attempts(0.0, 5), 1.0);
        assert_eq!(CostModel::expected_attempts(0.5, 1), 1.0);
        // Monotone in the budget, approaching 1/(1 − p) from below.
        let mut last = 0.0;
        for n in 1..20 {
            let e = CostModel::expected_attempts(0.5, n);
            assert!(e > last && e < 2.0);
            last = e;
        }
        // The factor scales every round trip linearly.
        let flat = model(800);
        let lossy = model(800).with_retry_factor(1.5);
        assert_eq!(lossy.taq(), 1.5 * flat.taq());
        assert_eq!(lossy.split_stats_cost(), 1.5 * flat.split_stats_cost());
        assert_eq!(
            lossy.window_download(100.0),
            1.5 * flat.window_download(100.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_retry_factor_rejected() {
        model(800).with_retry_factor(0.9);
    }

    #[test]
    fn batched_c4_prices_fewer_stat_bytes() {
        let single = model(800);
        let batched = batched_model(800);
        let diff = single.c4_mobijoin(1000.0, 1000.0, 2) - batched.c4_mobijoin(1000.0, 1000.0, 2);
        assert_eq!(
            diff,
            single.split_stats_cost() - batched.split_stats_cost(),
            "only the statistics term may differ"
        );
    }
}
