//! Join specifications.

use asj_geom::JoinPredicate;

/// What the join should return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// All qualifying `(r, s)` pairs.
    Pairs,
    /// Iceberg distance semi-join: R-objects with at least `min_matches`
    /// qualifying partners in S ("hotels close to at least 10
    /// restaurants"). Pairs are still collected; the threshold is applied
    /// as the final aggregation on the device.
    Iceberg { min_matches: u32 },
}

/// Full specification of one distributed join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSpec {
    /// The spatial predicate θ.
    pub predicate: JoinPredicate,
    /// Pair output vs iceberg aggregation.
    pub output: OutputKind,
    /// Use bucket ε-RANGE submission in NLSJ (Section 3.1's `c2'`). The
    /// paper's Figure 8 runs "the bucket versions of the algorithms".
    pub bucket_nlsj: bool,
    /// Upper bound on the half-diagonal of object MBRs, used to widen the
    /// ε/2 window extension so the reference-point discipline stays exact
    /// for non-point objects (see `asj_geom::dedup`). Zero for point
    /// datasets; the rail experiments set it from the generator spec.
    pub mbr_half_extent_hint: f64,
    /// Seed for the device's local randomness (UpJoin's confirming random
    /// COUNT window placement). Deterministic runs by default.
    pub seed: u64,
}

impl JoinSpec {
    /// ε-distance join returning pairs.
    pub fn distance_join(eps: f64) -> Self {
        JoinSpec {
            predicate: JoinPredicate::WithinDistance(eps),
            output: OutputKind::Pairs,
            bucket_nlsj: false,
            mbr_half_extent_hint: 0.0,
            seed: 0xA5,
        }
    }

    /// MBR intersection join returning pairs.
    pub fn intersection_join() -> Self {
        JoinSpec {
            predicate: JoinPredicate::Intersects,
            output: OutputKind::Pairs,
            bucket_nlsj: false,
            mbr_half_extent_hint: 0.0,
            seed: 0xA5,
        }
    }

    /// Iceberg distance semi-join with threshold `m`.
    pub fn iceberg(eps: f64, m: u32) -> Self {
        JoinSpec {
            output: OutputKind::Iceberg { min_matches: m },
            ..JoinSpec::distance_join(eps)
        }
    }

    /// Enables bucket NLSJ submission.
    pub fn with_bucket_nlsj(mut self, on: bool) -> Self {
        self.bucket_nlsj = on;
        self
    }

    /// Sets the MBR half-extent hint.
    pub fn with_mbr_half_extent(mut self, hint: f64) -> Self {
        self.mbr_half_extent_hint = hint;
        self
    }

    /// Sets the device-side randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-side window extension for every server interaction: ε/2 plus
    /// the half-extent hint (0 for intersection joins).
    pub fn extension(&self) -> f64 {
        match self.predicate {
            JoinPredicate::Intersects => 0.0,
            JoinPredicate::WithinDistance(eps) => eps * 0.5 + self.mbr_half_extent_hint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_spec() {
        let s = JoinSpec::distance_join(100.0);
        assert_eq!(s.predicate, JoinPredicate::WithinDistance(100.0));
        assert_eq!(s.output, OutputKind::Pairs);
        assert_eq!(s.extension(), 50.0);
        assert!(!s.bucket_nlsj);
    }

    #[test]
    fn intersection_has_no_extension() {
        let s = JoinSpec::intersection_join().with_mbr_half_extent(30.0);
        assert_eq!(s.extension(), 0.0);
    }

    #[test]
    fn hint_widens_extension() {
        let s = JoinSpec::distance_join(100.0).with_mbr_half_extent(7.5);
        assert_eq!(s.extension(), 57.5);
    }

    #[test]
    fn iceberg_spec() {
        let s = JoinSpec::iceberg(100.0, 10);
        assert_eq!(s.output, OutputKind::Iceberg { min_matches: 10 });
        assert_eq!(s.predicate.epsilon(), 100.0);
    }

    #[test]
    fn builders_chain() {
        let s = JoinSpec::distance_join(1.0)
            .with_bucket_nlsj(true)
            .with_seed(7);
        assert!(s.bucket_nlsj);
        assert_eq!(s.seed, 7);
    }
}
