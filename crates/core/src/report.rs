//! Join reports and errors.

use asj_device::{BufferExceeded, IcebergResult};
use asj_geom::ObjectId;
use asj_net::LinkSnapshot;

use crate::exec::ExecStats;

/// Why a join could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// The algorithm needs a capability the deployment lacks (e.g.
    /// SemiJoin against non-cooperative servers).
    Unsupported(String),
    /// The device buffer cannot hold what the algorithm requires (e.g.
    /// NaiveJoin on datasets larger than the buffer).
    Buffer(BufferExceeded),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Unsupported(what) => write!(f, "unsupported: {what}"),
            JoinError::Buffer(b) => write!(f, "{b}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<BufferExceeded> for JoinError {
    fn from(b: BufferExceeded) -> Self {
        JoinError::Buffer(b)
    }
}

/// The outcome of one distributed join: results plus the complete wire
/// accounting, measured (not estimated) on both links.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Algorithm identifier.
    pub algorithm: &'static str,
    /// Qualifying `(r_id, s_id)` pairs, exactly once each.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Iceberg aggregation when the spec asked for it.
    pub iceberg: Option<IcebergResult>,
    /// Wire accounting of the R link.
    pub link_r: LinkSnapshot,
    /// Wire accounting of the S link.
    pub link_s: LinkSnapshot,
    /// Tariff-weighted cost: `bR·bytes_R + bS·bytes_S`.
    pub cost_units: f64,
    /// Highest device-buffer occupancy observed.
    pub peak_buffer: usize,
    /// Operator / recursion statistics.
    pub stats: ExecStats,
}

impl JoinReport {
    /// The paper's headline metric: total wire bytes over both links.
    pub fn total_bytes(&self) -> u64 {
        self.link_r.total_bytes() + self.link_s.total_bytes()
    }

    /// Total queries issued to both servers.
    pub fn total_queries(&self) -> u64 {
        self.link_r.total_queries() + self.link_s.total_queries()
    }

    /// Aggregate (COUNT/avg-area) queries issued — the statistics overhead
    /// the paper trades against pruning.
    pub fn aggregate_queries(&self) -> u64 {
        self.link_r.count_queries + self.link_s.count_queries
    }

    /// Objects downloaded from both servers.
    pub fn objects_downloaded(&self) -> u64 {
        self.link_r.objects_received + self.link_s.objects_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_from() {
        let e: JoinError = BufferExceeded {
            requested: 9,
            capacity: 5,
        }
        .into();
        assert!(e.to_string().contains("requested 9"));
        let u = JoinError::Unsupported("semijoin needs cooperation".into());
        assert!(u.to_string().contains("semijoin"));
    }

    #[test]
    fn report_totals() {
        let link_r = LinkSnapshot {
            up_bytes: 100,
            down_bytes: 200,
            count_queries: 3,
            ..LinkSnapshot::default()
        };
        let link_s = LinkSnapshot {
            up_bytes: 10,
            objects_received: 5,
            ..LinkSnapshot::default()
        };
        let rep = JoinReport {
            algorithm: "test",
            pairs: vec![(1, 2)],
            iceberg: None,
            link_r,
            link_s,
            cost_units: 310.0,
            peak_buffer: 42,
            stats: ExecStats::default(),
        };
        assert_eq!(rep.total_bytes(), 310);
        assert_eq!(rep.aggregate_queries(), 3);
        assert_eq!(rep.objects_downloaded(), 5);
        assert_eq!(rep.total_queries(), 3);
    }
}
