//! Join reports and errors.

use asj_device::{BufferExceeded, IcebergResult};
use asj_geom::ObjectId;
use asj_net::{CacheSnapshot, FleetSnapshot, LinkSnapshot};

use crate::exec::ExecStats;

/// Why a join could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// The algorithm needs a capability the deployment lacks (e.g.
    /// SemiJoin against non-cooperative servers).
    Unsupported(String),
    /// The device buffer cannot hold what the algorithm requires (e.g.
    /// NaiveJoin on datasets larger than the buffer).
    Buffer(BufferExceeded),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Unsupported(what) => write!(f, "unsupported: {what}"),
            JoinError::Buffer(b) => write!(f, "{b}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<BufferExceeded> for JoinError {
    fn from(b: BufferExceeded) -> Self {
        JoinError::Buffer(b)
    }
}

/// The outcome of one distributed join: results plus the complete wire
/// accounting, measured (not estimated) on both links.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Algorithm identifier.
    pub algorithm: &'static str,
    /// Qualifying `(r_id, s_id)` pairs, exactly once each.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Iceberg aggregation when the spec asked for it.
    pub iceberg: Option<IcebergResult>,
    /// Wire accounting of the R link (the router's aggregate over all
    /// shard exchanges when the side is a fleet).
    pub link_r: LinkSnapshot,
    /// Wire accounting of the S link.
    pub link_s: LinkSnapshot,
    /// Per-shard accounting of the R side when it is a sharded fleet.
    pub fleet_r: Option<FleetSnapshot>,
    /// Per-shard accounting of the S side when it is a sharded fleet.
    pub fleet_s: Option<FleetSnapshot>,
    /// Client-cache accounting of the R link when the deployment runs the
    /// cache (hits, misses, wire bytes saved).
    pub cache_r: Option<CacheSnapshot>,
    /// Client-cache accounting of the S link.
    pub cache_s: Option<CacheSnapshot>,
    /// Fraction of fleet shards whose replica sets stayed reachable
    /// while this join ran: the minimum of the two fleets'
    /// [`FleetSnapshot::coverage`] values (a flat link counts as fully
    /// covered). `1.0` on a healthy run; below `1.0` only when
    /// `NetConfig::allow_partial` let reads complete over exhausted
    /// replica sets — the pair list is then a *subset* of the true
    /// answer.
    pub coverage: f64,
    /// Tariff-weighted cost: `bR·bytes_R + bS·bytes_S`.
    pub cost_units: f64,
    /// Highest device-buffer occupancy observed.
    pub peak_buffer: usize,
    /// Operator / recursion statistics.
    pub stats: ExecStats,
}

impl JoinReport {
    /// The paper's headline metric: total wire bytes over both links.
    pub fn total_bytes(&self) -> u64 {
        self.link_r.total_bytes() + self.link_s.total_bytes()
    }

    /// Total queries issued to both servers.
    pub fn total_queries(&self) -> u64 {
        self.link_r.total_queries() + self.link_s.total_queries()
    }

    /// Aggregate (COUNT/avg-area) queries issued — the statistics overhead
    /// the paper trades against pruning.
    pub fn aggregate_queries(&self) -> u64 {
        self.link_r.count_queries + self.link_s.count_queries
    }

    /// Objects downloaded from both servers.
    pub fn objects_downloaded(&self) -> u64 {
        self.link_r.objects_received + self.link_s.objects_received
    }

    /// Mean wire bytes per shard server across both sides — how much
    /// load one member of the fleet carries. A flat link counts as a
    /// one-shard fleet.
    pub fn mean_shard_bytes(&self) -> f64 {
        let shards =
            |fleet: &Option<FleetSnapshot>| fleet.as_ref().map_or(1, FleetSnapshot::shard_count);
        (self.link_r.total_bytes() + self.link_s.total_bytes()) as f64
            / (shards(&self.fleet_r) + shards(&self.fleet_s)) as f64
    }

    /// Combined client-cache accounting over both links; `None` when the
    /// deployment runs no cache.
    pub fn cache(&self) -> Option<CacheSnapshot> {
        match (&self.cache_r, &self.cache_s) {
            (None, None) => None,
            (r, s) => Some(r.unwrap_or_default().plus(&s.unwrap_or_default())),
        }
    }

    /// Wire bytes the client cache kept off both links (0 without one).
    pub fn cache_bytes_saved(&self) -> u64 {
        self.cache().map_or(0, |c| c.bytes_saved)
    }

    /// Overall cache hit rate across both links and both tiers (0 when
    /// no cache ran or nothing was looked up).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache().map_or(0.0, |c| c.hit_rate())
    }

    /// Fraction of scatter slots the routers skipped by bounds pruning,
    /// over both fleets (0 when neither side is sharded).
    pub fn pruning_rate(&self) -> f64 {
        let (mut scattered, mut pruned) = (0u64, 0u64);
        for fleet in [&self.fleet_r, &self.fleet_s].into_iter().flatten() {
            scattered += fleet.scattered;
            pruned += fleet.pruned;
        }
        if scattered + pruned == 0 {
            0.0
        } else {
            pruned as f64 / (scattered + pruned) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_from() {
        let e: JoinError = BufferExceeded {
            requested: 9,
            capacity: 5,
        }
        .into();
        assert!(e.to_string().contains("requested 9"));
        let u = JoinError::Unsupported("semijoin needs cooperation".into());
        assert!(u.to_string().contains("semijoin"));
    }

    #[test]
    fn report_totals() {
        let link_r = LinkSnapshot {
            up_bytes: 100,
            down_bytes: 200,
            count_queries: 3,
            ..LinkSnapshot::default()
        };
        let link_s = LinkSnapshot {
            up_bytes: 10,
            objects_received: 5,
            ..LinkSnapshot::default()
        };
        let rep = JoinReport {
            algorithm: "test",
            pairs: vec![(1, 2)],
            iceberg: None,
            link_r,
            link_s,
            fleet_r: None,
            fleet_s: None,
            cache_r: None,
            cache_s: None,
            coverage: 1.0,
            cost_units: 310.0,
            peak_buffer: 42,
            stats: ExecStats::default(),
        };
        assert_eq!(rep.total_bytes(), 310);
        assert_eq!(rep.aggregate_queries(), 3);
        assert_eq!(rep.objects_downloaded(), 5);
        assert_eq!(rep.total_queries(), 3);
        // Flat links: one "shard" per side, no pruning.
        assert_eq!(rep.mean_shard_bytes(), 155.0);
        assert_eq!(rep.pruning_rate(), 0.0);
    }

    #[test]
    fn fleet_shard_metrics() {
        let fleet_r = FleetSnapshot {
            per_shard: vec![LinkSnapshot::default(); 3],
            generations: vec![0; 3],
            scattered: 6,
            pruned: 2,
            failed_shards: vec![],
            per_replica: vec![vec![LinkSnapshot::default()]; 3],
            health: vec![Vec::new(); 3],
        };
        let rep = JoinReport {
            algorithm: "test",
            pairs: vec![],
            iceberg: None,
            link_r: LinkSnapshot {
                up_bytes: 300,
                ..LinkSnapshot::default()
            },
            link_s: LinkSnapshot {
                up_bytes: 100,
                ..LinkSnapshot::default()
            },
            fleet_r: Some(fleet_r),
            fleet_s: None,
            cache_r: None,
            cache_s: None,
            coverage: 1.0,
            cost_units: 400.0,
            peak_buffer: 0,
            stats: ExecStats::default(),
        };
        // 400 bytes over 3 R shards + 1 flat S link.
        assert_eq!(rep.mean_shard_bytes(), 100.0);
        assert_eq!(rep.pruning_rate(), 0.25);
    }
}
