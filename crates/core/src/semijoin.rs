//! SemiJoin — the indexed, cooperative baseline (Section 5.3, Tan et
//! al. [16]).

use crate::deploy::Deployment;
use crate::exec::{ExecCtx, Side};
use crate::report::{JoinError, JoinReport};
use crate::spec::JoinSpec;
use crate::DistributedJoin;
use asj_net::Request;

/// Distributed semi-join over published R-tree levels, with the PDA acting
/// as the mediator between two *cooperative* servers:
///
/// 1. identify the smaller dataset (one COUNT to each server);
/// 2. download one level of the **larger** dataset's R-tree MBRs (the
///    paper ships "the MBRs of the second to last level", i.e. the leaf
///    nodes) — through the device;
/// 3. upload those MBRs to the smaller server, which returns its objects
///    within ε of any MBR (the semi-join filter) — through the device;
/// 4. upload the filtered objects to the larger server, which performs
///    the final join and returns the qualifying id pairs.
///
/// "In practice, SemiJoin cannot be applied in our problem, because the
/// servers are unlikely to publish the internal structures of their
/// indexes" — running it against a non-cooperative deployment returns
/// [`JoinError::Unsupported`]. It exists as the Figure 8(b) comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemiJoin {
    /// Which R-tree level to ship, in levels above the leaves
    /// (0 = leaf nodes, the paper's choice).
    pub level: u8,
}

impl DistributedJoin for SemiJoin {
    fn name(&self) -> &'static str {
        "semijoin"
    }

    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError> {
        if !deployment.is_cooperative() {
            return Err(JoinError::Unsupported(
                "SemiJoin needs cooperative servers (deployment built without .cooperative())"
                    .into(),
            ));
        }
        let mut ctx = ExecCtx::new(deployment, spec);
        let space = ctx.space;
        let eps = spec.predicate.epsilon();

        // Step 1: sizes.
        let (count_r, count_s) = ctx.counts(&space);
        if count_r == 0 || count_s == 0 {
            return Ok(ctx.finish(self.name()));
        }
        let (small, large) = if count_r <= count_s {
            (Side::R, Side::S)
        } else {
            (Side::S, Side::R)
        };

        // Step 2: one R-tree level of the large dataset, via the device.
        let mbrs = ctx
            .link(large)
            .request(&Request::CoopLevelMbrs(self.level))
            .into_rects();

        // Step 3: semi-join filter at the small server.
        let filtered = ctx
            .link(small)
            .request(&Request::CoopFilterByMbrs { mbrs, eps })
            .into_objects();

        // Step 4: final join at the large server. Pairs come back as
        // (pushed_id, local_id) = (small, large).
        let pairs = ctx
            .link(large)
            .request(&Request::CoopJoinPush {
                objects: filtered,
                eps,
            })
            .into_pairs();
        for (small_id, large_id) in pairs {
            let (r, s) = match small {
                Side::R => (small_id, large_id),
                Side::S => (large_id, small_id),
            };
            ctx.out.push(r, s);
        }
        Ok(ctx.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use crate::naive::NaiveJoin;
    use asj_geom::{Rect, SpatialObject};

    fn lattice(n: u32, step: f64, id0: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| {
                SpatialObject::point(
                    id0 + i,
                    (i % n) as f64 * step + 3.0,
                    (i / n) as f64 * step + 3.0,
                )
            })
            .collect()
    }

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn refused_without_cooperation() {
        let dep = DeploymentBuilder::new(lattice(5, 10.0, 0), lattice(5, 10.0, 100))
            .with_space(space())
            .build();
        let err = SemiJoin::default()
            .run(&dep, &JoinSpec::distance_join(5.0))
            .unwrap_err();
        assert!(matches!(err, JoinError::Unsupported(_)));
    }

    #[test]
    fn matches_naive_result() {
        let r = lattice(8, 20.0, 0); // 64 points (small side)
        let s = lattice(20, 48.0, 10_000); // 400 points (large side)
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(2000)
            .with_space(space())
            .cooperative()
            .build();
        let spec = JoinSpec::distance_join(15.0);
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = SemiJoin::default().run(&dep, &spec).unwrap().pairs;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn orientation_preserved_when_s_is_small() {
        let r = lattice(20, 48.0, 0); // large
        let s = lattice(8, 20.0, 10_000); // small
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(2000)
            .with_space(space())
            .cooperative()
            .build();
        let spec = JoinSpec::distance_join(15.0);
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = SemiJoin::default().run(&dep, &spec).unwrap().pairs;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_side_cheap_exit() {
        let dep = DeploymentBuilder::new(lattice(5, 10.0, 0), vec![])
            .with_space(space())
            .cooperative()
            .build();
        let rep = SemiJoin::default()
            .run(&dep, &JoinSpec::distance_join(5.0))
            .unwrap();
        assert!(rep.pairs.is_empty());
        assert_eq!(rep.total_queries(), 2, "just the two COUNTs");
    }

    #[test]
    fn ships_mbrs_not_objects_of_large_side() {
        let r = lattice(4, 10.0, 0); // 16 points, small
        let s = lattice(30, 32.0, 10_000); // 900 points, large
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(5000)
            .with_space(space())
            .cooperative()
            .build();
        let rep = SemiJoin::default()
            .run(&dep, &JoinSpec::distance_join(10.0))
            .unwrap();
        // The large server never ships raw objects — only MBRs and pairs.
        assert_eq!(rep.link_s.objects_received, 0);
        assert!(rep.link_s.coop_queries >= 2); // level-MBRs + join-push
        assert!(rep.link_r.coop_queries == 1); // filter
    }
}
