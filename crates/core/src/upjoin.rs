//! UpJoin — Uniform Partition Join (Section 4.1, Figure 3).

use asj_geom::Rect;
use rand::Rng;

use crate::deploy::Deployment;
use crate::exec::{ExecCtx, Side};
use crate::report::{JoinError, JoinReport};
use crate::spec::JoinSpec;
use crate::DistributedJoin;

/// UpJoin identifies regions where each dataset's distribution is
/// *relatively uniform* — there the cost model is accurate and a physical
/// operator can be chosen safely, without knowing future recursive steps.
///
/// Per window (Fig. 3):
/// 1. prune if either side is empty;
/// 2. for each dataset not already labelled uniform and worth more
///    statistics (inequality 10), COUNT the four quadrants and test
///    Eq. (9): every quadrant within `α·|Dw|` of `|Dw|/4`;
/// 3. a dataset passing the test is *confirmed* with one extra COUNT on a
///    quadrant-sized window at a random position (guards against, e.g., a
///    centered Gaussian masquerading as uniform);
/// 4. if HBSJ is cheapest: execute it when **both** datasets are uniform
///    and memory suffices, else repartition;
/// 5. if NLSJ is cheapest: execute it when the **inner** (larger) relation
///    is uniform — a skewed outer cannot prune anything from a uniform
///    inner — else repartition.
///
/// Datasets labelled uniform keep estimated `|Dw|/4` quadrant counts in
/// recursion instead of buying more aggregate queries.
#[derive(Debug, Clone, Copy)]
pub struct UpJoin {
    /// Uniformity tolerance α of Eq. (9). The paper tunes it in
    /// Fig. 6(a) and settles on 0.25.
    pub alpha: f64,
    /// Issue the confirming random COUNT (Fig. 3 line 6). On by default;
    /// the ablation bench switches it off.
    pub confirm_random: bool,
}

impl Default for UpJoin {
    fn default() -> Self {
        UpJoin {
            alpha: 0.25,
            confirm_random: true,
        }
    }
}

impl UpJoin {
    /// UpJoin with a specific α.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "α ∈ (0, 1]");
        UpJoin {
            alpha,
            ..UpJoin::default()
        }
    }

    /// Examines one dataset over `w`: returns the quadrant views (real or
    /// estimated) and whether the dataset is (now) considered uniform.
    fn examine(
        &self,
        ctx: &mut ExecCtx<'_>,
        w: &Rect,
        quads: &[Rect; 4],
        side: Side,
        ds: DsView,
    ) -> ([DsView; 4], bool) {
        // Fig. 3 lines 3 & 7: small or previously-uniform datasets are
        // assumed uniform; quadrant counts are estimated, not queried.
        if ds.uniform || !ctx.decision_cost().worth_more_stats(ds.count) {
            let est = DsView {
                count: ds.count / 4.0,
                uniform: true,
                estimated: true,
            };
            return ([est; 4], true);
        }
        let real = ctx.quadrant_counts(side, quads);
        let quarter = ds.count / 4.0;
        // Eq. (9) tolerance. Two readings are possible from the paper
        // (α·|Dw| as printed, or α·|Dw|/4 relative to the expected quarter
        // count); we use the relative form — the printed one never lets
        // any α in Fig. 6(a)'s swept range change a verdict. On top of it
        // sits a 3·√|Dw| sampling-noise floor: a few hundred points
        // Poisson-fluctuate by more than α/4 of a quarter, and without
        // the floor every false "skewed" verdict triggers a cascade of
        // useless repartitioning on uniform data (the k = 128 regime).
        // The floor is capped just below the quarter so a (nearly) empty
        // quadrant — the actual pruning opportunity — always reads as
        // skewed.
        let tolerance = (self.alpha * ds.count / 4.0)
            .max(3.0 * ds.count.sqrt())
            .min(quarter * (1.0 - 1e-9));
        let passes_eq9 = real.iter().all(|&c| (quarter - c as f64).abs() < tolerance);
        let uniform = if !passes_eq9 {
            false
        } else if !self.confirm_random {
            true
        } else {
            // Fig. 3 line 6: one quadrant-sized COUNT at a random location.
            let probe = random_subwindow(ctx, w);
            let c = ctx.count(side, &probe) as f64;
            (quarter - c).abs() < tolerance
        };
        let views = real.map(|c| DsView {
            count: c as f64,
            uniform,
            estimated: false,
        });
        (views, uniform)
    }

    /// "Additional aggregate queries … only when accuracy is crucial,
    /// i.e., when applying the physical operators": replaces an estimated
    /// count with a real COUNT right before an operator fires.
    fn refresh(&self, ctx: &mut ExecCtx<'_>, w: &Rect, side: Side, ds: DsView) -> DsView {
        if !ds.estimated {
            return ds;
        }
        DsView {
            count: ctx.count(side, w) as f64,
            uniform: ds.uniform,
            estimated: false,
        }
    }

    fn step(&self, ctx: &mut ExecCtx<'_>, w: &Rect, r: DsView, s: DsView, depth: u32) {
        if r.count <= 0.0 || s.count <= 0.0 {
            ctx.stats.pruned_windows += 1;
            return;
        }
        if ctx.at_limit(w, depth) {
            let r = self.refresh(ctx, w, Side::R, r);
            let s = self.refresh(ctx, w, Side::S, s);
            if r.count > 0.0 && s.count > 0.0 {
                ctx.forced(w, r.count.round() as u64, s.count.round() as u64);
            }
            return;
        }
        let quads = w.quadrants();
        let (qr, r_uni) = self.examine(ctx, w, &quads, Side::R, r);
        let (qs, s_uni) = self.examine(ctx, w, &quads, Side::S, s);

        let costs = ctx.costs(w, r.count, s.count);
        let (nlsj_side, nlsj_cost) = costs.cheaper_nlsj();
        // Fig. 3 line 9 compares the *cost formulas*; the memory check is
        // a separate condition on line 10 ("…and there is enough memory").
        let hbsj_chosen = ctx.decision_cost().c1_unchecked(r.count, s.count) < nlsj_cost;
        // Don't buy another round of statistics (8 COUNTs ≈ one split)
        // when the chosen operator is already cheaper than two such
        // rounds — the Eq. (10) philosophy applied to repartitioning.
        let cheap_gate = 2.0 * ctx.stats_cost_per_split();

        // Stopping decision (on the possibly-estimated counts):
        // * HBSJ chosen → stop on doubly-uniform (or trivially cheap)
        //   windows — Fig. 3 lines 9–11;
        // * NLSJ chosen → stop unless the inner relation is skewed (a
        //   skewed inner means repartitioning may prune the probe space)
        //   — Fig. 3 lines 12–14; also stop when NLSJ already costs less
        //   than the statistics another round would buy.
        // Repartitioning is only worth its statistics when some quadrant
        // of either dataset is (nearly) empty — those are the "areas
        // which cannot possibly participate in the result" the paper
        // prunes. A skewed-but-everywhere-dense window (e.g. the rail
        // network under a uniform probe set) has nothing to prune, and
        // recursing over it would buy quadtrees of COUNTs for no savings.
        let prunable = (0..4).any(|i| {
            // Near-empty quadrant: pruning available right now; or strong
            // mass concentration (a quadrant 50 % above its share): the
            // complementary quadrants are draining, so emptiness is
            // likely one level down.
            qr[i].count <= 0.05 * (r.count / 4.0)
                || qs[i].count <= 0.05 * (s.count / 4.0)
                || qr[i].count >= 1.5 * (r.count / 4.0)
                || qs[i].count >= 1.5 * (s.count / 4.0)
        });
        let stop = if hbsj_chosen {
            (r_uni && s_uni) || costs.c1.is_some_and(|c1| c1 < cheap_gate) || !prunable
        } else {
            let inner_uniform = match nlsj_side {
                Side::R => s_uni,
                Side::S => r_uni,
            };
            inner_uniform || nlsj_cost < cheap_gate || !prunable
        };

        if stop {
            // "Accuracy is crucial" now: resolve estimates, then pick the
            // physical operator from the *real* costs.
            let r = self.refresh(ctx, w, Side::R, r);
            let s = self.refresh(ctx, w, Side::S, s);
            if r.count <= 0.0 || s.count <= 0.0 {
                ctx.stats.pruned_windows += 1;
                return;
            }
            let real = ctx.costs(w, r.count, s.count);
            let (real_side, real_nlsj) = real.cheaper_nlsj();
            if real.hbsj_wins()
                && ctx
                    .hbsj_leaf_counted(w, Some(s.count.round() as u64))
                    .is_ok()
            {
                return;
            }
            if ctx.decision_cost().c1_decomposed(r.count, s.count) < real_nlsj {
                // The window overflows the device but downloading it in
                // buffer-sized pieces still beats NLSJ: decompose with
                // plain COUNT-pruned HBSJ (real counts at every level) —
                // further uniformity analysis has nothing left to add.
                ctx.hbsj(w, r.count.round() as u64, s.count.round() as u64, depth);
                return;
            }
            ctx.nlsj(w, real_side);
            return;
        }
        // Repartition.
        ctx.stats.splits += 1;
        for i in 0..4 {
            self.step(ctx, &quads[i], qr[i], qs[i], depth + 1);
        }
    }
}

/// One dataset's view at the current window: its count (possibly an
/// estimate derived from an ancestor's count under the uniformity
/// assumption), whether it is labelled uniform, and whether the count is
/// estimated.
#[derive(Debug, Clone, Copy)]
struct DsView {
    count: f64,
    uniform: bool,
    estimated: bool,
}

/// A quadrant-sized window at a uniformly random position inside `w`.
fn random_subwindow(ctx: &mut ExecCtx<'_>, w: &Rect) -> Rect {
    let hw = w.width() * 0.5;
    let hh = w.height() * 0.5;
    let x = ctx.rng.random_range(w.min.x..=w.min.x + hw);
    let y = ctx.rng.random_range(w.min.y..=w.min.y + hh);
    Rect::from_coords(x, y, x + hw, y + hh)
}

impl DistributedJoin for UpJoin {
    fn name(&self) -> &'static str {
        "upjoin"
    }

    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError> {
        let mut ctx = ExecCtx::new(deployment, spec);
        let space = ctx.space;
        let (count_r, count_s) = ctx.counts(&space);
        let view = |count: u64| DsView {
            count: count as f64,
            uniform: false,
            estimated: false,
        };
        self.step(&mut ctx, &space, view(count_r), view(count_s), 0);
        Ok(ctx.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use crate::naive::NaiveJoin;
    use asj_geom::SpatialObject;

    fn cluster(n: u32, cx: f64, cy: f64, id0: u32, spread: f64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::point(
                    id0 + i,
                    cx + (i % 10) as f64 * spread,
                    cy + (i / 10) as f64 * spread,
                )
            })
            .collect()
    }

    fn lattice(n: u32, step: f64, id0: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| {
                SpatialObject::point(
                    id0 + i,
                    (i % n) as f64 * step + 3.0,
                    (i / n) as f64 * step + 3.0,
                )
            })
            .collect()
    }

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn correct_on_clusters() {
        let r = cluster(120, 480.0, 500.0, 0, 1.5);
        let s = cluster(120, 490.0, 505.0, 5000, 1.5);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(6.0);
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = UpJoin::default().run(&dep, &spec).unwrap().pairs;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn correct_on_uniformish_data() {
        let r = lattice(20, 48.0, 0); // 400 points
        let s = lattice(20, 48.0, 10_000);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(900)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(10.0);
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = UpJoin::default().run(&dep, &spec).unwrap().pairs;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn prunes_disjoint_clusters_cheaply() {
        let r = cluster(500, 100.0, 100.0, 0, 0.5);
        let s = cluster(500, 900.0, 900.0, 5000, 0.5);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let rep = UpJoin::default()
            .run(&dep, &JoinSpec::distance_join(5.0))
            .unwrap();
        assert!(rep.pairs.is_empty());
        assert_eq!(rep.objects_downloaded(), 0);
        // 2 global + ≤ a few rounds of quadrant counts.
        assert!(
            rep.aggregate_queries() <= 30,
            "queries: {}",
            rep.aggregate_queries()
        );
    }

    #[test]
    fn uniform_dataset_detected_and_not_overpartitioned() {
        // A regular lattice passes Eq. (9) at the top level: UpJoin should
        // label both sides uniform, pick HBSJ (fits: 2×400 ≤ 900) and stop.
        let r = lattice(20, 48.0, 0);
        let s = lattice(20, 48.0, 10_000);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(900)
            .with_space(space())
            .build();
        let rep = UpJoin::default()
            .run(&dep, &JoinSpec::distance_join(10.0))
            .unwrap();
        assert_eq!(rep.stats.hbsj_runs, 1);
        assert_eq!(rep.stats.splits, 0);
        // 2 global counts + 8 quadrant counts + 2 random confirms.
        assert_eq!(rep.aggregate_queries(), 12);
    }

    #[test]
    fn alpha_bounds_enforced() {
        let _ = UpJoin::with_alpha(0.25);
    }

    #[test]
    #[should_panic(expected = "α ∈ (0, 1]")]
    fn alpha_zero_rejected() {
        let _ = UpJoin::with_alpha(0.0);
    }

    #[test]
    fn small_windows_assumed_uniform_without_stats() {
        // Tiny datasets (< the Eq. 10 threshold) must not trigger quadrant
        // counting: 2 global counts and then a physical operator.
        let r = cluster(10, 500.0, 500.0, 0, 1.0);
        let s = cluster(10, 502.0, 500.0, 100, 1.0);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let rep = UpJoin::default()
            .run(&dep, &JoinSpec::distance_join(4.0))
            .unwrap();
        assert_eq!(
            rep.aggregate_queries(),
            2,
            "no quadrant stats for tiny data"
        );
        assert!(!rep.pairs.is_empty());
    }
}
