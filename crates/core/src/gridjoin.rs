//! Fixed-grid partition join with COUNT pruning.

use asj_geom::Grid;

use crate::deploy::Deployment;
use crate::exec::{ExecCtx, Side};
use crate::report::{JoinError, JoinReport};
use crate::spec::JoinSpec;
use crate::DistributedJoin;

/// The divide-and-conquer strawman of Section 3: impose a regular `k × k`
/// grid, COUNT both datasets per cell, skip cells where either side is
/// empty, and HBSJ the rest (recursively decomposing cells that overflow
/// the buffer).
///
/// Downloads every object in every non-prunable cell — "a drawback of the
/// partition-based technique is that it downloads all objects from both
/// datasets" — which is exactly why it makes a good ablation baseline for
/// the adaptive algorithms.
#[derive(Debug, Clone, Copy)]
pub struct GridJoin {
    /// Grid resolution per axis.
    pub k: u32,
}

impl Default for GridJoin {
    fn default() -> Self {
        GridJoin { k: 8 }
    }
}

impl GridJoin {
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        GridJoin { k }
    }
}

impl DistributedJoin for GridJoin {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError> {
        let mut ctx = ExecCtx::new(deployment, spec);
        let grid = Grid::square(ctx.space, self.k);
        let cells: Vec<_> = grid.cells().collect();
        if ctx.cost.batched_stats {
            // The 2k² cell COUNTs collapse to one MultiCount sweep per
            // server: all cells on R, then only the R-occupied cells on S
            // — the same pruning order as the per-query loop below.
            let counts_r = ctx.multi_count(Side::R, &cells);
            let mut live = Vec::new();
            for (cell, count_r) in cells.into_iter().zip(counts_r) {
                if count_r == 0 {
                    ctx.stats.pruned_windows += 1;
                } else {
                    live.push((cell, count_r));
                }
            }
            if !live.is_empty() {
                let probes: Vec<_> = live.iter().map(|(c, _)| *c).collect();
                let counts_s = ctx.multi_count(Side::S, &probes);
                for ((cell, count_r), count_s) in live.into_iter().zip(counts_s) {
                    if count_s == 0 {
                        ctx.stats.pruned_windows += 1;
                    } else {
                        ctx.hbsj(&cell, count_r, count_s, 0);
                    }
                }
            }
        } else {
            for cell in cells {
                let count_r = ctx.count(Side::R, &cell);
                if count_r == 0 {
                    ctx.stats.pruned_windows += 1;
                    continue;
                }
                let count_s = ctx.count(Side::S, &cell);
                if count_s == 0 {
                    ctx.stats.pruned_windows += 1;
                    continue;
                }
                ctx.hbsj(&cell, count_r, count_s, 0);
            }
        }
        Ok(ctx.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use crate::naive::NaiveJoin;
    use asj_geom::{Rect, SpatialObject};

    fn cluster(n: u32, cx: f64, cy: f64, id0: u32) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| SpatialObject::point(id0 + i, cx + (i % 10) as f64, cy + (i / 10) as f64))
            .collect()
    }

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn matches_naive_result() {
        let r = cluster(100, 100.0, 100.0, 0);
        let s = cluster(100, 103.0, 100.0, 1000);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(5.0);
        let mut naive = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut grid = GridJoin::default().run(&dep, &spec).unwrap().pairs;
        naive.sort_unstable();
        grid.sort_unstable();
        assert_eq!(naive, grid);
        assert!(!naive.is_empty());
    }

    #[test]
    fn prunes_empty_regions() {
        // Clusters in opposite corners: almost every cell prunable.
        let r = cluster(100, 50.0, 50.0, 0);
        let s = cluster(100, 900.0, 900.0, 1000);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let rep = GridJoin::new(4)
            .run(&dep, &JoinSpec::distance_join(5.0))
            .unwrap();
        assert!(rep.pairs.is_empty());
        assert_eq!(
            rep.objects_downloaded(),
            0,
            "disjoint data → zero downloads"
        );
        assert!(rep.stats.pruned_windows >= 15);
    }

    #[test]
    fn grid_cheaper_than_naive_on_skewed_data() {
        let r = cluster(100, 50.0, 50.0, 0);
        let mut s = cluster(50, 52.0, 50.0, 1000);
        s.extend(cluster(50, 900.0, 900.0, 2000));
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(5.0);
        let naive = NaiveJoin.run(&dep, &spec).unwrap();
        let grid = GridJoin::default().run(&dep, &spec).unwrap();
        let mut a = naive.pairs.clone();
        let mut b = grid.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Grid skips the lonely S cluster at (900,900).
        assert!(grid.objects_downloaded() < naive.objects_downloaded());
    }

    #[test]
    fn batched_cell_sweep_same_result_two_aggregate_messages() {
        let r = cluster(100, 100.0, 100.0, 0);
        let s = cluster(100, 103.0, 100.0, 1000);
        let build = |batched: bool| {
            DeploymentBuilder::new(r.clone(), s.clone())
                .with_buffer(800)
                .with_space(space())
                .with_net(asj_net::NetConfig::default().with_batched_stats(batched))
                .build()
        };
        let spec = JoinSpec::distance_join(5.0);
        let single = GridJoin::new(8).run(&build(false), &spec).unwrap();
        let batched = GridJoin::new(8).run(&build(true), &spec).unwrap();
        let mut a = single.pairs.clone();
        let mut b = batched.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Per-query: 64 R-cell COUNTs + one S COUNT per occupied cell.
        // Batched: one MultiCount per server.
        assert!(single.aggregate_queries() >= 64);
        assert_eq!(batched.aggregate_queries(), 2);
        assert!(batched.total_bytes() < single.total_bytes());
        assert_eq!(single.stats.pruned_windows, batched.stats.pruned_windows);
    }

    #[test]
    fn k1_degenerates_to_single_window() {
        let r = cluster(20, 100.0, 100.0, 0);
        let s = cluster(20, 100.0, 100.0, 1000);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let rep = GridJoin::new(1)
            .run(&dep, &JoinSpec::distance_join(2.0))
            .unwrap();
        assert_eq!(rep.stats.hbsj_runs, 1);
    }
}
