//! Deployment: the two servers (or shard fleets), the network, the
//! device's resources.
//!
//! Each logical side is either a single server or — via
//! [`DeploymentBuilder::with_shards`] — a *fleet* of spatially partitioned
//! shard servers behind a client-side scatter-gather
//! [`ShardRouter`](asj_net::ShardRouter). The fleet presents the exact
//! same [`Link`] interface, so every join algorithm runs unchanged; its
//! link meter reports the physical scatter traffic, with per-shard detail
//! available through [`Link::fleet`].

use std::sync::Arc;

use asj_geom::{Rect, SpatialObject};
use asj_net::{
    CacheLayer, ChannelServer, ClientCache, FaultLayer, FaultPlan, Link, NetConfig, QueryHandler,
    RawExchange, Request, Response, ShardEndpoint, ShardMeta, ShardRouter, Update,
};
use asj_server::{
    partition_objects, RTreeStore, ServicePolicy, SpatialService, SpatialStore, VersionedStore,
};

use crate::Side;

/// The default device buffer: the paper's 800 points ("40 % of the total
/// data size for the synthetic datasets").
pub const DEFAULT_BUFFER: usize = 800;

/// How servers are carried: in the caller's process, one thread per
/// server, or multiplexed onto one shared reactor thread (the
/// many-device carrier — see `asj_net::event_loop`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CarrierKind {
    InProc,
    Threaded,
    EventLoop,
}

/// One server process: in the caller's process, behind its own thread,
/// or registered as an endpoint on the deployment's shared reactor.
enum Endpoint {
    InProc(Arc<dyn QueryHandler>),
    Channel {
        handle: asj_net::ServerHandle,
        _server: ChannelServer,
    },
    Event(asj_net::EventEndpoint),
}

impl Endpoint {
    fn spawn<H: QueryHandler + 'static>(
        service: Arc<H>,
        kind: CarrierKind,
        reactor: Option<&Arc<asj_net::EventLoop>>,
        name: &str,
    ) -> Endpoint {
        match kind {
            CarrierKind::InProc => Endpoint::InProc(service),
            CarrierKind::Threaded => {
                let (server, handle) = ChannelServer::spawn(service, name);
                Endpoint::Channel {
                    handle,
                    _server: server,
                }
            }
            CarrierKind::EventLoop => Endpoint::Event(
                reactor
                    .expect("event-loop deployments carry a reactor")
                    .serve(service),
            ),
        }
    }

    fn raw(&self) -> Box<dyn RawExchange> {
        match self {
            Endpoint::InProc(h) => Box::new(InProcDyn(Arc::clone(h))),
            Endpoint::Channel { handle, .. } => Box::new(handle.connect()),
            Endpoint::Event(endpoint) => Box::new(endpoint.connect()),
        }
    }

    fn event_stats(&self) -> Option<Arc<asj_net::EndpointStats>> {
        match self {
            Endpoint::Event(endpoint) => Some(Arc::clone(endpoint.stats())),
            _ => None,
        }
    }
}

/// One replica of a shard server: its endpoint plus — on a live
/// deployment — a handle on its versioned store, kept so the
/// crash-restart hook can resynchronize a replica that stayed dark from
/// the freshest sibling before it serves again.
struct Replica {
    endpoint: Arc<Endpoint>,
    live: Option<Arc<VersionedStore<RTreeStore>>>,
}

/// One logical side of the join: a single server, or a fleet of shard
/// servers — each optionally replicated — reached through a
/// scatter-gather [`ShardRouter`].
///
/// Endpoints are reference-counted so a [`FaultLayer`] restart hook can
/// reconnect to the *same* server after a scripted crash: the store (and
/// its published generation) survives; only the connection is lost.
enum Carrier {
    Single(Arc<Endpoint>),
    Fleet(Vec<(Arc<ShardMeta>, Vec<Replica>)>),
}

/// Wraps an endpoint's raw exchange in a [`FaultLayer`] when a plan is
/// configured. The restart hook reconnects to the same endpoint, so a
/// crash-then-restart resumes serving the `VersionedStore` at its last
/// published generation — exactly the recovery contract the chaos suite
/// checks.
fn physical_edge(e: &Arc<Endpoint>, fault: Option<&FaultPlan>) -> Box<dyn RawExchange> {
    match fault {
        None => e.raw(),
        Some(plan) => {
            let ep = Arc::clone(e);
            Box::new(FaultLayer::new(e.raw(), *plan).with_restart(Box::new(move || ep.raw())))
        }
    }
}

/// Decorrelates the scripted fault stream per replica edge: replica 0
/// keeps the plan's seed, sibling `j` gets `seed ^ j·φ`. The derivation
/// is independent of the replica *count*, so growing a fleet from 1 to
/// n replicas never reshuffles the faults an existing edge sees — the
/// fault-matrix monotonicity claim (more replicas, never fewer
/// successes) rests on exactly this.
fn replica_plan(plan: &FaultPlan, replica: usize) -> FaultPlan {
    let mut p = *plan;
    p.seed ^= (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    p
}

/// The physical edge to replica `j` of one shard's replica group. Under
/// a fault plan the edge gets its own decorrelated [`FaultLayer`]; its
/// restart hook first catches the replica's store up from the
/// freshest sibling (a replica that stayed dark through an outage missed
/// the update batches its siblings acked — resynchronizing here is what
/// lets the router's generation floor readmit it), then reconnects.
fn replica_edge(group: &[Replica], j: usize, fault: Option<&FaultPlan>) -> Box<dyn RawExchange> {
    match fault {
        None => group[j].endpoint.raw(),
        Some(plan) => {
            let ep = Arc::clone(&group[j].endpoint);
            let own = group[j].live.clone();
            let siblings: Vec<Arc<VersionedStore<RTreeStore>>> = group
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .filter_map(|(_, r)| r.live.clone())
                .collect();
            let restart = move || {
                if let Some(own) = &own {
                    if let Some(best) = siblings.iter().max_by_key(|s| s.generation()) {
                        // `catch_up` no-ops unless the donor is ahead, so
                        // a replica that never lagged restarts untouched.
                        own.catch_up((*best.current_objects()).clone(), best.generation());
                    }
                }
                ep.raw()
            };
            Box::new(
                FaultLayer::new(group[j].endpoint.raw(), replica_plan(plan, j))
                    .with_restart(Box::new(restart)),
            )
        }
    }
}

impl Carrier {
    /// Opens a fresh link; when `cache` is set, a [`CacheLayer`] (with a
    /// fresh per-link telemetry but the given shared store) is stacked in
    /// front of the server or fleet.
    ///
    /// Fleet links all share the carrier's [`ShardMeta`]s, so generation
    /// stamps and bounds growth observed through any link (including the
    /// update path) are visible to every other link's router.
    /// When `net.wire_v2` is on, whichever layer owns the *physical*
    /// edge negotiates protocol v2 over it before the link is handed
    /// out: a bare link negotiates with its server, a cache layer with
    /// the server behind it, a shard router per shard. With the flag
    /// off (the default) no handshake frame is ever sent and every link
    /// speaks v1 byte-identically.
    fn link(
        &self,
        net: &NetConfig,
        tariff: f64,
        cache: Option<&Arc<ClientCache>>,
        fault: Option<&FaultPlan>,
    ) -> Link {
        match self {
            Carrier::Single(e) => match cache {
                Some(c) => {
                    let mut layer =
                        CacheLayer::new(physical_edge(e, fault), net.packet, Arc::clone(c))
                            .with_retry(net.retry);
                    if net.wire_v2 {
                        layer.negotiate_v2();
                    }
                    Link::cached(layer, tariff)
                }
                None => {
                    let link = Link::new(physical_edge(e, fault), net.packet, tariff)
                        .with_retry(net.retry);
                    if net.wire_v2 {
                        link.negotiate()
                    } else {
                        link
                    }
                }
            },
            Carrier::Fleet(members) => {
                let shards = members
                    .iter()
                    .map(|(meta, group)| {
                        let edges = (0..group.len())
                            .map(|j| replica_edge(group, j, fault))
                            .collect();
                        ShardEndpoint::with_replicas(Arc::clone(meta), edges)
                    })
                    .collect();
                // Retries live on the router (the layer that owns the
                // physical edges): a cache stacked over a fleet must not
                // re-deliver, or every scatter would double-count.
                let mut router = ShardRouter::new(shards, net.packet)
                    .with_retry(net.retry)
                    .with_breakers(net.breaker)
                    .with_allow_partial(net.allow_partial);
                if net.wire_v2 {
                    router.negotiate_v2();
                }
                match cache {
                    Some(c) => Link::cached(CacheLayer::over_router(router, Arc::clone(c)), tariff),
                    None => Link::routed(router, tariff),
                }
            }
        }
    }

    /// Shard servers behind this side (1 for a single server).
    fn shard_count(&self) -> usize {
        match self {
            Carrier::Single(_) => 1,
            Carrier::Fleet(members) => members.len(),
        }
    }

    /// Replicas per shard (1 for a single server or a replica-less
    /// fleet). Every shard of a fleet carries the same replica count.
    fn replica_count(&self) -> usize {
        match self {
            Carrier::Single(_) => 1,
            Carrier::Fleet(members) => members.first().map_or(1, |(_, g)| g.len()),
        }
    }

    /// Reactor endpoint stats for every replica of every shard,
    /// shard-major order; empty unless this side rides the event-loop
    /// carrier.
    fn event_stats(&self) -> Vec<Arc<asj_net::EndpointStats>> {
        match self {
            Carrier::Single(e) => e.event_stats().into_iter().collect(),
            Carrier::Fleet(members) => members
                .iter()
                .flat_map(|(_, group)| group.iter().filter_map(|r| r.endpoint.event_stats()))
                .collect(),
        }
    }
}

/// Adapter: `InProcExchange` is generic; deployments hold `dyn` handlers.
struct InProcDyn(Arc<dyn QueryHandler>);

impl asj_net::RawExchange for InProcDyn {
    fn exchange(&self, request: bytes::Bytes) -> bytes::Bytes {
        // Version negotiation is link control: answered at the transport
        // adapter, never surfaced to the query handler.
        if let Some(accept) = asj_net::codec::try_answer_hello(&request) {
            return accept;
        }
        // Retried update batches arrive wrapped in a dedup envelope; peel
        // it and route through the tagged at-most-once path so a
        // duplicated delivery can never double-bump a generation. The
        // same contract every server-side transport adapter honours.
        if let Some((tag, body)) = asj_net::codec::peel_dedup(&request) {
            let mut buf = bytes::BytesMut::new();
            match asj_net::codec::decode_request_versioned(body) {
                Ok((Request::ApplyUpdates(updates), wire)) => {
                    let resp = self.0.handle_tagged_updates(tag, updates);
                    asj_net::codec::encode_response_versioned(&resp, wire, None, &mut buf);
                    return buf.freeze();
                }
                _ => return asj_net::codec::malformed_frame(),
            }
        }
        let (req, wire) = match asj_net::codec::decode_request_versioned(request) {
            Ok(pair) => pair,
            // Same contract as every transport adapter: a garbled frame
            // is answered with the typed error, never panicked on.
            Err(_) => return asj_net::codec::malformed_frame(),
        };
        // Zero-copy serving: the handler streams its answer straight into
        // the reply buffer (see `SpatialService::handle_into`).
        let mut buf = bytes::BytesMut::new();
        self.0.handle_into(req, wire, &mut buf);
        buf.freeze()
    }
}

/// A ready-to-join deployment: server R, server S, the network
/// configuration, the device's buffer size and the global data space.
///
/// Construct via [`Deployment::in_process`] / [`Deployment::threaded`] or
/// the full [`DeploymentBuilder`]. Each [`DistributedJoin::run`] call opens
/// fresh metered links, so reports never bleed into each other.
///
/// [`DistributedJoin::run`]: crate::DistributedJoin::run
pub struct Deployment {
    r: Carrier,
    s: Carrier,
    net: NetConfig,
    buffer_capacity: usize,
    space: Rect,
    cooperative: bool,
    live: bool,
    /// Per-side client caches when `net.client_cache` is enabled. The
    /// stores live on the deployment — not the links — so a *session* of
    /// joins against the same immutable servers shares one cache: every
    /// [`Deployment::connect`] hands out fresh meters and fresh cache
    /// telemetry, but hits what earlier joins downloaded. The two sides
    /// never share a store (they front different datasets).
    cache_r: Option<Arc<ClientCache>>,
    cache_s: Option<Arc<ClientCache>>,
    /// Scripted fault plan wrapped around every physical edge (both
    /// sides, every shard) when set via [`DeploymentBuilder::with_faults`].
    /// Each link opened by [`Deployment::connect`] gets its own
    /// [`FaultLayer`] seeded from this plan, so fault sequences are
    /// deterministic per link and replayable by seed.
    fault: Option<FaultPlan>,
    /// The shared reactor thread when the deployment was built with
    /// [`DeploymentBuilder::event_loop`]: every endpoint of both sides is
    /// served by this one thread, and it must outlive every link handed
    /// out by [`Deployment::connect`]. `None` on the other carriers.
    reactor: Option<Arc<asj_net::EventLoop>>,
}

impl Deployment {
    /// In-process deployment (fast; used by the experiment sweeps) with
    /// non-cooperative R-tree servers and default network/buffer.
    pub fn in_process(r: Vec<SpatialObject>, s: Vec<SpatialObject>, net: NetConfig) -> Self {
        DeploymentBuilder::new(r, s).with_net(net).build()
    }

    /// Deployment with each server on its own thread behind a channel —
    /// the distributed topology of the paper's prototype.
    pub fn threaded(r: Vec<SpatialObject>, s: Vec<SpatialObject>, net: NetConfig) -> Self {
        DeploymentBuilder::new(r, s)
            .with_net(net)
            .threaded()
            .build()
    }

    /// Fresh metered links `(R, S)` for one algorithm run. With the
    /// client cache enabled the links share the deployment's per-side
    /// cache stores, so consecutive joins (a session) reuse each other's
    /// statistics and windows; meters and cache telemetry are still per
    /// link, so reports never bleed into each other.
    pub fn connect(&self) -> (Link, Link) {
        (
            self.r.link(
                &self.net,
                self.net.tariff_r,
                self.cache_r.as_ref(),
                self.fault.as_ref(),
            ),
            self.s.link(
                &self.net,
                self.net.tariff_s,
                self.cache_s.as_ref(),
                self.fault.as_ref(),
            ),
        )
    }

    /// The per-side client-cache stores `(R, S)`; `None` per side when
    /// the cache is disabled. Exposed for session inspection and for the
    /// differential suites' poisoning instrument.
    pub fn caches(&self) -> (Option<&Arc<ClientCache>>, Option<&Arc<ClientCache>>) {
        (self.cache_r.as_ref(), self.cache_s.as_ref())
    }

    /// The global data space the join partitions.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Device buffer capacity in objects.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_capacity
    }

    /// Network configuration.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// The resolved device join-kernel worker count:
    /// [`NetConfig::sweep_workers`], with `0` mapped to the machine's
    /// available parallelism. Results are identical at every value — the
    /// knob only moves wall-clock time.
    pub fn sweep_workers(&self) -> usize {
        match self.net.sweep_workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// `true` when the servers were built with the cooperative extension
    /// (required by the SemiJoin baseline).
    pub fn is_cooperative(&self) -> bool {
        self.cooperative
    }

    /// `true` when the servers were built live
    /// ([`DeploymentBuilder::live`]) and accept [`Request::ApplyUpdates`].
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Applies one batched update tick to the given side and returns the
    /// acknowledged serving generation (for a fleet: the sum of per-shard
    /// generations, the same number subsequent response frames are
    /// stamped with).
    ///
    /// The batch travels over a regular metered wire link — updates are
    /// traffic like any other message. When the client cache is enabled
    /// the link is cached, so the shared session store observes the
    /// acknowledgement and stops serving entries keyed to older
    /// generations by construction.
    ///
    /// # Panics
    ///
    /// Panics when the deployment is frozen (built without
    /// [`DeploymentBuilder::live`]) — frozen stores refuse updates.
    pub fn apply_updates(&self, side: Side, batch: Vec<Update>) -> u64 {
        match self.try_apply_updates(side, batch) {
            Response::Ack { generation } => generation,
            Response::Refused => panic!("apply_updates on a frozen deployment"),
            other => panic!("unexpected update acknowledgement: {other:?}"),
        }
    }

    /// Like [`Deployment::apply_updates`] but surfaces the typed response
    /// instead of panicking — on a faulted deployment an update tick can
    /// legitimately exhaust its retry budget and come back
    /// [`Response::Unavailable`]. The chaos suites' writer threads use
    /// this to keep streaming through injected outages.
    pub fn try_apply_updates(&self, side: Side, batch: Vec<Update>) -> Response {
        let (carrier, tariff, cache) = match side {
            Side::R => (&self.r, self.net.tariff_r, self.cache_r.as_ref()),
            Side::S => (&self.s, self.net.tariff_s, self.cache_s.as_ref()),
        };
        let link = carrier.link(&self.net, tariff, cache, self.fault.as_ref());
        link.request(&Request::ApplyUpdates(batch))
    }

    /// Shard servers behind each side: `(R, S)`. `(1, 1)` for flat
    /// deployments *and* for explicit 1-shard fleets — the cost model's
    /// fan-out factor is the same in both cases, as is the wire traffic
    /// (a 1-shard router is byte-transparent).
    pub fn shard_counts(&self) -> (usize, usize) {
        (self.r.shard_count(), self.s.shard_count())
    }

    /// Replica servers behind each shard (both sides use the same
    /// count). `1` for flat deployments and unreplicated fleets — where
    /// the wire traffic is byte-identical to a deployment that never
    /// heard of replication.
    pub fn replica_count(&self) -> usize {
        self.r.replica_count().max(self.s.replica_count())
    }

    /// `true` when every server is multiplexed onto the shared reactor
    /// thread (built via [`DeploymentBuilder::event_loop`]).
    pub fn is_event_loop(&self) -> bool {
        self.reactor.is_some()
    }

    /// Per-shard reactor endpoint stats (queue-depth high-water mark,
    /// served/malformed counters) for one side, in shard order. Empty
    /// unless the deployment rides the event-loop carrier.
    pub fn event_stats(&self, side: Side) -> Vec<Arc<asj_net::EndpointStats>> {
        match side {
            Side::R => self.r.event_stats(),
            Side::S => self.s.event_stats(),
        }
    }
}

/// Builder for [`Deployment`].
pub struct DeploymentBuilder {
    r_objects: Vec<SpatialObject>,
    s_objects: Vec<SpatialObject>,
    net: NetConfig,
    buffer_capacity: usize,
    space: Option<Rect>,
    cooperative: bool,
    carrier: CarrierKind,
    live: bool,
    rtree_fanout: usize,
    shards: Option<(usize, usize)>,
    replicas: usize,
    fault: Option<FaultPlan>,
}

impl DeploymentBuilder {
    pub fn new(r_objects: Vec<SpatialObject>, s_objects: Vec<SpatialObject>) -> Self {
        DeploymentBuilder {
            r_objects,
            s_objects,
            net: NetConfig::default(),
            buffer_capacity: DEFAULT_BUFFER,
            space: None,
            cooperative: false,
            carrier: CarrierKind::InProc,
            live: false,
            rtree_fanout: asj_rtree::DEFAULT_MAX_ENTRIES,
            shards: None,
            replicas: 1,
            fault: None,
        }
    }

    /// Network parameters (MTU, headers, tariffs).
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Device buffer in objects (the paper sweeps 100 and 800).
    pub fn with_buffer(mut self, capacity: usize) -> Self {
        self.buffer_capacity = capacity;
        self
    }

    /// Explicit global space (defaults to the union of both datasets'
    /// bounds).
    pub fn with_space(mut self, space: Rect) -> Self {
        self.space = Some(space);
        self
    }

    /// Enables the cooperative server extension (SemiJoin baseline only).
    pub fn cooperative(mut self) -> Self {
        self.cooperative = true;
        self
    }

    /// Runs each server on its own thread.
    pub fn threaded(mut self) -> Self {
        self.carrier = CarrierKind::Threaded;
        self
    }

    /// Multiplexes every server (both sides, every shard) onto **one**
    /// shared reactor thread — the many-device carrier. Unlike
    /// [`threaded`], the thread count stays constant no matter how many
    /// shards the fleet has or how many devices [`Deployment::connect`];
    /// each connection carries its own negotiation state inside the
    /// reactor (see `asj_net::event_loop`). Replies are byte-identical
    /// to both other carriers.
    ///
    /// [`threaded`]: DeploymentBuilder::threaded
    pub fn event_loop(mut self) -> Self {
        self.carrier = CarrierKind::EventLoop;
        self
    }

    /// Builds *live* servers: each store is wrapped in a
    /// [`VersionedStore`] that applies [`Request::ApplyUpdates`] batches
    /// copy-on-write into a freshly rebuilt R-tree and atomically
    /// publishes it as the next generation. Queries served from a
    /// generation > 0 carry the generation stamp on the wire; until the
    /// first update tick a live deployment is byte-identical to a frozen
    /// one.
    pub fn live(mut self) -> Self {
        self.live = true;
        self
    }

    /// R-tree fanout of the server stores.
    pub fn with_rtree_fanout(mut self, fanout: usize) -> Self {
        self.rtree_fanout = fanout;
        self
    }

    /// Enables (or disables) the client-side statistics/window cache in
    /// front of both servers/fleets — shorthand for setting
    /// [`NetConfig::client_cache`] on the network configuration. The
    /// cache store lives on the built [`Deployment`], so joins run
    /// back-to-back against it form a session that reuses downloads.
    pub fn with_client_cache(mut self, on: bool) -> Self {
        self.net = self.net.with_client_cache(on);
        self
    }

    /// Device join-kernel worker count — shorthand for setting
    /// [`NetConfig::sweep_workers`] (`0` = auto, `1` = serial). The
    /// parallel kernels are differentially proven result- and
    /// byte-identical to the serial ones, so this knob only trades
    /// wall-clock time.
    pub fn with_sweep_workers(mut self, workers: usize) -> Self {
        self.net = self.net.with_sweep_workers(workers);
        self
    }

    /// Wraps every physical edge of the deployment (both sides, every
    /// shard) in a deterministic [`FaultLayer`] scripted by `plan` —
    /// drops, delays, garbled replies, crash-then-restart. Pair with
    /// [`NetConfig::with_retry`] to give links a recovery budget; the
    /// chaos suites prove the faulted deployment still answers exactly
    /// like a clean one whenever the budget suffices. A
    /// [`FaultPlan::is_noop`] plan leaves traffic byte-identical.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Shards each side across a fleet of `n_r` / `n_s` spatially
    /// partitioned servers behind a client-side scatter-gather router
    /// (see `asj_server::partition` and `asj_net::router`). `n = 1` is a
    /// legitimate fleet: the router is byte-transparent, which the
    /// differential tests exploit. Combine with [`threaded`] to give every
    /// shard its own server thread — the router then scatters to them
    /// concurrently.
    ///
    /// [`threaded`]: DeploymentBuilder::threaded
    pub fn with_shards(mut self, n_r: usize, n_s: usize) -> Self {
        assert!(n_r >= 1 && n_s >= 1, "each side needs at least one shard");
        self.shards = Some((n_r, n_s));
        self
    }

    /// Replicates every shard server `n`-fold. Each replica is a full
    /// server over the shard's data; the router spreads reads across the
    /// replica set by request hash, fails a lost exchange over to the
    /// next sibling before any retry budget is spent, and broadcasts
    /// update batches to every replica (one surviving ack carries the
    /// batch; a replica that stayed dark catches up at its restart
    /// hook). Under [`with_faults`] every replica edge gets its own
    /// decorrelated fault stream. `n = 1` (the default) is byte-identical
    /// to an unreplicated deployment; `n > 1` without [`with_shards`]
    /// implies a 1-shard fleet per side.
    ///
    /// ```
    /// use asj_core::DeploymentBuilder;
    /// use asj_geom::SpatialObject;
    /// let pts = |b: u32| (0..16).map(|i| SpatialObject::point(b + i, i as f64, 0.0)).collect();
    /// let deploy = DeploymentBuilder::new(pts(0), pts(100))
    ///     .with_shards(2, 2)
    ///     .with_replicas(2)
    ///     .live()
    ///     .build();
    /// assert_eq!(deploy.replica_count(), 2);
    /// ```
    ///
    /// [`with_faults`]: DeploymentBuilder::with_faults
    /// [`with_shards`]: DeploymentBuilder::with_shards
    pub fn with_replicas(mut self, n: usize) -> Self {
        assert!(n >= 1, "each shard needs at least one replica");
        self.replicas = n;
        self
    }

    pub fn build(self) -> Deployment {
        assert!(
            !(self.net.allow_partial && self.net.client_cache.enabled),
            "allow_partial cannot run with the client cache: a partial reply \
             must never be cached as the truth"
        );
        let policy = if self.cooperative {
            ServicePolicy::Cooperative
        } else {
            ServicePolicy::NonCooperative
        };
        let space = self.space.unwrap_or_else(|| {
            Rect::union_of(
                self.r_objects
                    .iter()
                    .chain(self.s_objects.iter())
                    .map(|o| o.mbr),
            )
            .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 1.0, 1.0))
        });
        let fanout = self.rtree_fanout;
        // One reactor thread carries every endpoint of an event-loop
        // deployment; it lives on the `Deployment` so links can never
        // outlive it accidentally.
        let reactor = (self.carrier == CarrierKind::EventLoop)
            .then(|| Arc::new(asj_net::EventLoop::spawn("deploy")));
        // Frozen servers answer straight from an immutable R-tree; live
        // servers wrap the same store in a `VersionedStore` whose rebuild
        // closure re-packs the R-tree at the same fanout, so generation 0
        // answers identically either way.
        let spawn = |objects: Vec<SpatialObject>, name: &str| -> Replica {
            if self.live {
                let store =
                    VersionedStore::new(objects, move |objs| RTreeStore::with_fanout(objs, fanout));
                let service = Arc::new(SpatialService::new(store).with_policy(policy));
                // The store handle outlives the endpoint wiring so a
                // replica restart hook can catch up from a sibling.
                let live = Arc::clone(service.store());
                Replica {
                    endpoint: Arc::new(Endpoint::spawn(
                        service,
                        self.carrier,
                        reactor.as_ref(),
                        name,
                    )),
                    live: Some(live),
                }
            } else {
                Replica {
                    endpoint: Arc::new(Endpoint::spawn(
                        Arc::new(
                            SpatialService::new(RTreeStore::with_fanout(objects, fanout))
                                .with_policy(policy),
                        ),
                        self.carrier,
                        reactor.as_ref(),
                        name,
                    )),
                    live: None,
                }
            }
        };
        // Replication without sharding still needs a router (it owns the
        // replica sets): an implicit 1-shard fleet per side.
        let shards = if self.replicas > 1 {
            self.shards.or(Some((1, 1)))
        } else {
            self.shards
        };
        let replicas = self.replicas;
        let make = |objects: Vec<SpatialObject>, shards: Option<usize>, name: &str| -> Carrier {
            match shards {
                None => Carrier::Single(spawn(objects, name).endpoint),
                Some(n) => {
                    let part = partition_objects(&space, n, objects);
                    // Advertised bounds come from the partitioner's
                    // property-tested helper (union of member MBRs), not
                    // from the store: router pruning soundness must not
                    // depend on how a backend reports its bounds. The
                    // partition cell rides along on the shard meta so the
                    // router can route updates to their owning shard.
                    let bounds = part.bounds();
                    Carrier::Fleet(
                        bounds
                            .into_iter()
                            .zip(part.members)
                            .zip(part.cells)
                            .enumerate()
                            .map(|(i, ((bounds, members), cell))| {
                                let group = (0..replicas)
                                    .map(|j| {
                                        let rname = if replicas > 1 {
                                            format!("{name}{i}.{j}")
                                        } else {
                                            format!("{name}{i}")
                                        };
                                        spawn(members.clone(), &rname)
                                    })
                                    .collect();
                                let meta = Arc::new(ShardMeta::with_cell(bounds, Some(cell)));
                                (meta, group)
                            })
                            .collect(),
                    )
                }
            }
        };
        let cache = |cfg: asj_net::CacheConfig| {
            cfg.enabled
                .then(|| Arc::new(ClientCache::new(cfg.window_budget_bytes)))
        };
        Deployment {
            r: make(self.r_objects, shards.map(|s| s.0), "R"),
            s: make(self.s_objects, shards.map(|s| s.1), "S"),
            buffer_capacity: self.buffer_capacity,
            space,
            cooperative: self.cooperative,
            live: self.live,
            cache_r: cache(self.net.client_cache),
            cache_s: cache(self.net.client_cache),
            fault: self.fault,
            net: self.net,
            reactor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::Point;

    fn pts(n: u32, offset: f64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| SpatialObject::point(i, offset + i as f64, offset))
            .collect()
    }

    #[test]
    fn default_space_is_union_of_bounds() {
        let d = Deployment::in_process(pts(10, 0.0), pts(10, 100.0), NetConfig::default());
        assert_eq!(d.space(), Rect::from_coords(0.0, 0.0, 109.0, 100.0));
        assert_eq!(d.buffer_capacity(), DEFAULT_BUFFER);
        assert!(!d.is_cooperative());
    }

    #[test]
    fn fresh_links_have_fresh_meters() {
        let d = Deployment::in_process(pts(10, 0.0), pts(10, 0.0), NetConfig::default());
        let (r1, _s1) = d.connect();
        r1.request(&Request::Count(d.space()));
        assert_eq!(r1.meter().snapshot().count_queries, 1);
        let (r2, _s2) = d.connect();
        assert_eq!(r2.meter().snapshot().count_queries, 0);
    }

    #[test]
    fn threaded_and_inproc_answer_identically() {
        let a = Deployment::in_process(pts(50, 0.0), pts(50, 5.0), NetConfig::default());
        let b = Deployment::threaded(pts(50, 0.0), pts(50, 5.0), NetConfig::default());
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (ra, sa) = a.connect();
        let (rb, sb) = b.connect();
        assert_eq!(
            ra.request(&Request::Count(w)).into_count(),
            rb.request(&Request::Count(w)).into_count()
        );
        assert_eq!(
            sa.request(&Request::Window(w)).into_objects(),
            sb.request(&Request::Window(w)).into_objects()
        );
        assert_eq!(
            ra.meter().snapshot().total_bytes(),
            rb.meter().snapshot().total_bytes()
        );
    }

    #[test]
    fn sharded_fleet_answers_like_flat_and_reports_shards() {
        let r = pts(50, 0.0);
        let s = pts(50, 5.0);
        let flat = Deployment::in_process(r.clone(), s.clone(), NetConfig::default());
        let fleet = DeploymentBuilder::new(r, s).with_shards(4, 3).build();
        assert_eq!(flat.shard_counts(), (1, 1));
        assert_eq!(fleet.shard_counts(), (4, 3));
        let w = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        let (fr, fs) = flat.connect();
        let (gr, gs) = fleet.connect();
        assert_eq!(
            fr.request(&Request::Count(w)).into_count(),
            gr.request(&Request::Count(w)).into_count()
        );
        let mut a: Vec<u32> = fs
            .request(&Request::Window(w))
            .into_objects()
            .iter()
            .map(|o| o.id)
            .collect();
        let mut b: Vec<u32> = gs
            .request(&Request::Window(w))
            .into_objects()
            .iter()
            .map(|o| o.id)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // The fleet link carries per-shard telemetry; the flat one none.
        assert!(fr.fleet().is_none());
        let t = gr.fleet().unwrap().snapshot();
        assert_eq!(t.shard_count(), 4);
        assert_eq!(t.summed(), gr.meter().snapshot());
    }

    #[test]
    fn threaded_fleet_matches_in_process_fleet() {
        let build = |threaded: bool| {
            let mut b = DeploymentBuilder::new(pts(40, 0.0), pts(40, 2.0)).with_shards(3, 3);
            if threaded {
                b = b.threaded();
            }
            b.build()
        };
        let a = build(false);
        let b = build(true);
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (ra, _) = a.connect();
        let (rb, _) = b.connect();
        assert_eq!(
            ra.request(&Request::Count(w)).into_count(),
            rb.request(&Request::Count(w)).into_count()
        );
        assert_eq!(
            ra.meter().snapshot().total_bytes(),
            rb.meter().snapshot().total_bytes(),
            "carrier must not change accounting"
        );
    }

    #[test]
    fn event_loop_deployment_matches_in_process_bytes() {
        let a = Deployment::in_process(pts(50, 0.0), pts(50, 5.0), NetConfig::default());
        let b = DeploymentBuilder::new(pts(50, 0.0), pts(50, 5.0))
            .event_loop()
            .build();
        assert!(!a.is_event_loop());
        assert!(b.is_event_loop());
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (ra, sa) = a.connect();
        let (rb, sb) = b.connect();
        assert_eq!(
            ra.request(&Request::Count(w)).into_count(),
            rb.request(&Request::Count(w)).into_count()
        );
        assert_eq!(
            sa.request(&Request::Window(w)).into_objects(),
            sb.request(&Request::Window(w)).into_objects()
        );
        assert_eq!(
            ra.meter().snapshot().total_bytes(),
            rb.meter().snapshot().total_bytes(),
            "carrier must not change accounting"
        );
        let stats = b.event_stats(Side::R);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].served(), 1);
        assert!(a.event_stats(Side::R).is_empty());
    }

    #[test]
    fn event_loop_fleet_matches_threaded_fleet() {
        let build = |kind: u8| {
            let mut b = DeploymentBuilder::new(pts(40, 0.0), pts(40, 2.0)).with_shards(3, 2);
            b = match kind {
                0 => b,
                1 => b.threaded(),
                _ => b.event_loop(),
            };
            b.build()
        };
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let run = |d: &Deployment| {
            let (r, s) = d.connect();
            let count = r.request(&Request::Count(w)).into_count();
            let objs = s.request(&Request::Window(w)).into_objects();
            (
                count,
                objs,
                r.meter().snapshot().total_bytes(),
                s.meter().snapshot().total_bytes(),
            )
        };
        let inproc = run(&build(0));
        let threaded = run(&build(1));
        let looped = run(&build(2));
        assert_eq!(inproc, threaded);
        assert_eq!(inproc, looped);
        // One reactor endpoint per shard, all served by one thread.
        let d = build(2);
        let (r, _) = d.connect();
        r.request(&Request::Count(w));
        assert_eq!(d.event_stats(Side::R).len(), 3);
        assert_eq!(d.event_stats(Side::S).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = DeploymentBuilder::new(pts(2, 0.0), pts(2, 0.0)).with_shards(0, 2);
    }

    #[test]
    fn client_cache_links_share_a_session_store_per_side() {
        let d = DeploymentBuilder::new(pts(20, 0.0), pts(20, 100.0))
            .with_client_cache(true)
            .build();
        let (r_caches, s_caches) = d.caches();
        assert!(r_caches.is_some() && s_caches.is_some());
        let w = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let (r1, s1) = d.connect();
        let first = r1.request(&Request::Count(w)).into_count();
        assert!(r1.meter().snapshot().total_bytes() > 0);
        // Sides must not share a store: S sees different data.
        let s_count = s1.request(&Request::Count(w)).into_count();
        assert_ne!(first, s_count);
        // A second connection (next join in the session) hits the store
        // the first one filled — zero bytes, fresh meter and telemetry.
        let (r2, _) = d.connect();
        assert_eq!(r2.request(&Request::Count(w)).into_count(), first);
        assert_eq!(r2.meter().snapshot().total_bytes(), 0);
        let snap = r2.cache().expect("cached link").snapshot();
        assert_eq!((snap.stats_hits, snap.stats_misses), (1, 0));
        assert_eq!(r1.cache().unwrap().snapshot().stats_hits, 0);
    }

    #[test]
    fn cache_disabled_builds_no_layer() {
        let d = Deployment::in_process(pts(5, 0.0), pts(5, 0.0), NetConfig::default());
        let (cr, cs) = d.caches();
        assert!(cr.is_none() && cs.is_none());
        let (r, _) = d.connect();
        assert!(r.cache().is_none());
    }

    #[test]
    fn cached_fleet_link_keeps_fleet_telemetry() {
        let d = DeploymentBuilder::new(pts(40, 0.0), pts(40, 0.0))
            .with_shards(3, 2)
            .with_client_cache(true)
            .build();
        let (r, s) = d.connect();
        let w = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        r.request(&Request::Count(w));
        assert!(r.fleet().is_some() && s.fleet().is_some());
        assert!(r.cache().is_some());
        assert_eq!(
            r.fleet().unwrap().snapshot().summed(),
            r.meter().snapshot(),
            "conservation law must survive the cache layer"
        );
    }

    #[test]
    fn live_flat_deployment_applies_updates_and_stamps() {
        let d = DeploymentBuilder::new(pts(10, 0.0), pts(10, 0.0))
            .live()
            .build();
        assert!(d.is_live());
        let w = Rect::from_coords(-10.0, -10.0, 200.0, 200.0);
        let (r, _) = d.connect();
        assert_eq!(r.request(&Request::Count(w)).into_count(), 10);
        assert_eq!(r.last_generation(), 0, "no update yet: frozen wire");
        let gen = d.apply_updates(
            Side::R,
            vec![Update::Insert(SpatialObject::point(99, 150.0, 150.0))],
        );
        assert_eq!(gen, 1);
        assert_eq!(r.request(&Request::Count(w)).into_count(), 11);
        assert_eq!(r.last_generation(), 1, "stamp observed on the old link");
        // The untouched side is unaffected.
        let (_, s) = d.connect();
        assert_eq!(s.request(&Request::Count(w)).into_count(), 10);
        assert_eq!(s.last_generation(), 0);
    }

    #[test]
    fn live_fleet_routes_updates_and_sums_generations() {
        let d = DeploymentBuilder::new(pts(40, 0.0), pts(40, 0.0))
            .with_shards(4, 2)
            .live()
            .build();
        let w = Rect::from_coords(-10.0, -10.0, 200.0, 200.0);
        // Every fleet batch touches all 4 shards, so the fleet generation
        // (sum of per-shard generations) advances by 4 per tick.
        let g1 = d.apply_updates(Side::R, vec![Update::Delete(0)]);
        assert_eq!(g1, 4);
        let g2 = d.apply_updates(
            Side::R,
            vec![Update::Move {
                id: 1,
                to: Rect::point(Point::new(120.0, 0.0)),
            }],
        );
        assert_eq!(g2, 8);
        let (r, _) = d.connect();
        assert_eq!(r.request(&Request::Count(w)).into_count(), 39);
        assert_eq!(r.last_generation(), 8, "merged replies carry the fleet sum");
        let t = r.fleet().unwrap().snapshot();
        assert_eq!(t.fleet_generation(), 8);
    }

    #[test]
    fn threaded_live_fleet_matches_in_process() {
        let run = |threaded: bool| {
            let mut b = DeploymentBuilder::new(pts(30, 0.0), pts(30, 2.0))
                .with_shards(3, 3)
                .live();
            if threaded {
                b = b.threaded();
            }
            let d = b.build();
            d.apply_updates(
                Side::S,
                vec![Update::Insert(SpatialObject::point(77, 3.0, 3.0))],
            );
            let (_, s) = d.connect();
            let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
            let mut ids: Vec<u32> = s
                .request(&Request::Window(w))
                .into_objects()
                .iter()
                .map(|o| o.id)
                .collect();
            ids.sort_unstable();
            (ids, s.meter().snapshot().total_bytes())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "frozen deployment")]
    fn frozen_deployment_refuses_updates() {
        let d = Deployment::in_process(pts(5, 0.0), pts(5, 0.0), NetConfig::default());
        assert!(!d.is_live());
        d.apply_updates(Side::R, vec![Update::Delete(0)]);
    }

    #[test]
    fn cached_live_deployment_notes_the_ack_generation() {
        let d = DeploymentBuilder::new(pts(20, 0.0), pts(20, 0.0))
            .with_client_cache(true)
            .live()
            .build();
        let w = Rect::from_coords(-10.0, -10.0, 200.0, 200.0);
        let (r1, _) = d.connect();
        assert_eq!(r1.request(&Request::Count(w)).into_count(), 20);
        // The update travels over a cached link, so the shared session
        // store hears the Ack and re-keys lookups to generation 1: the
        // stale generation-0 count can no longer be served.
        d.apply_updates(Side::R, vec![Update::Delete(3)]);
        let (r2, _) = d.connect();
        assert_eq!(r2.request(&Request::Count(w)).into_count(), 19);
        let snap = r2.cache().unwrap().snapshot();
        assert_eq!((snap.stats_hits, snap.stats_misses), (0, 1));
        // At the *same* generation the refreshed entry is hot again.
        let (r3, _) = d.connect();
        assert_eq!(r3.request(&Request::Count(w)).into_count(), 19);
        assert_eq!(r3.cache().unwrap().snapshot().stats_hits, 1);
    }

    #[test]
    fn faulted_deployment_with_retries_matches_clean_answers() {
        let clean = Deployment::in_process(pts(40, 0.0), pts(40, 5.0), NetConfig::default());
        let lossy = DeploymentBuilder::new(pts(40, 0.0), pts(40, 5.0))
            .with_net(NetConfig::default().with_retry(asj_net::RetryPolicy::attempts(6)))
            .with_faults(FaultPlan::seeded(7).with_drops(0.3).with_garbles(0.2))
            .build();
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (cr, cs) = clean.connect();
        let (lr, ls) = lossy.connect();
        assert_eq!(
            cr.request(&Request::Count(w)),
            lr.request(&Request::Count(w))
        );
        assert_eq!(
            cs.request(&Request::Window(w)),
            ls.request(&Request::Window(w))
        );
        // Recovery shows up in the meters, never in the answers.
        let recovered = lr.meter().snapshot().retried + ls.meter().snapshot().retried;
        assert!(recovered > 0, "plan must actually fire at these rates");
        assert_eq!(lr.meter().snapshot().abandoned, 0);
    }

    #[test]
    fn faulted_fleet_matches_clean_fleet_answers() {
        let build = |faulted: bool| {
            let mut b = DeploymentBuilder::new(pts(40, 0.0), pts(40, 2.0)).with_shards(4, 2);
            if faulted {
                b = b
                    .with_net(NetConfig::default().with_retry(asj_net::RetryPolicy::attempts(6)))
                    .with_faults(FaultPlan::seeded(13).with_drops(0.3));
            }
            b.build()
        };
        let clean = build(false);
        let lossy = build(true);
        let w = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        let (cr, _) = clean.connect();
        let (lr, _) = lossy.connect();
        assert_eq!(
            cr.request(&Request::Count(w)),
            lr.request(&Request::Count(w))
        );
        let t = lr.fleet().expect("fleet telemetry").snapshot();
        assert!(t.failed_shards.is_empty(), "budget must suffice at seed 13");
        // Conservation law survives injection: per-shard sums match the
        // aggregate meter, retries included.
        assert_eq!(t.summed(), lr.meter().snapshot());
    }

    #[test]
    fn noop_fault_plan_with_retry_off_is_byte_identical() {
        let clean = Deployment::in_process(pts(30, 0.0), pts(30, 3.0), NetConfig::default());
        let wrapped = DeploymentBuilder::new(pts(30, 0.0), pts(30, 3.0))
            .with_faults(FaultPlan::seeded(99))
            .build();
        let w = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let (cr, _) = clean.connect();
        let (wr, _) = wrapped.connect();
        assert_eq!(
            cr.request(&Request::Count(w)),
            wr.request(&Request::Count(w))
        );
        assert_eq!(cr.meter().snapshot(), wr.meter().snapshot());
    }

    #[test]
    fn crash_restart_resumes_at_the_published_generation() {
        let d = DeploymentBuilder::new(pts(20, 0.0), pts(20, 0.0))
            .live()
            .with_net(NetConfig::default().with_retry(asj_net::RetryPolicy::attempts(4)))
            .with_faults(FaultPlan::seeded(5).with_crash(1, 2))
            .build();
        // The update link's crash window never opens (one exchange).
        assert_eq!(
            d.apply_updates(
                Side::R,
                vec![Update::Insert(SpatialObject::point(99, 150.0, 150.0))],
            ),
            1
        );
        let w = Rect::from_coords(-10.0, -10.0, 200.0, 200.0);
        let (r, _) = d.connect();
        // Exchange 0 is clean; exchanges 1–2 hit the scripted dark window
        // and the retries ride the restart hook back to the same store —
        // every answer resumes at the published generation, never before.
        for _ in 0..4 {
            assert_eq!(r.request(&Request::Count(w)).into_count(), 21);
            assert_eq!(r.last_generation(), 1, "generation must never regress");
        }
        assert!(r.meter().snapshot().retried > 0, "the window must fire");
    }

    #[test]
    fn exhausted_faulted_deployment_surfaces_typed_unavailable() {
        // Certain loss with no retry budget: the typed outcome (not a
        // panic) reaches the caller, and try_apply_updates carries it too.
        let d = DeploymentBuilder::new(pts(10, 0.0), pts(10, 0.0))
            .live()
            .with_faults(FaultPlan::seeded(1).with_drops(1.0))
            .build();
        let (r, _) = d.connect();
        assert_eq!(r.request(&Request::Count(d.space())), Response::Unavailable);
        assert_eq!(
            d.try_apply_updates(Side::R, vec![Update::Delete(0)]),
            Response::Unavailable
        );
    }

    #[test]
    fn replicated_live_fleet_matches_flat_and_reports_replicas() {
        let flat = DeploymentBuilder::new(pts(40, 0.0), pts(40, 5.0))
            .with_shards(2, 2)
            .live()
            .build();
        let repl = DeploymentBuilder::new(pts(40, 0.0), pts(40, 5.0))
            .with_shards(2, 2)
            .with_replicas(2)
            .live()
            .build();
        assert_eq!(flat.replica_count(), 1);
        assert_eq!(repl.replica_count(), 2);
        // The broadcast acks the same fleet generation as the
        // unreplicated update path: per-shard acks are maxed over the
        // replica set, never summed across it.
        let batch = vec![Update::Insert(SpatialObject::point(99, 30.0, 30.0))];
        assert_eq!(
            flat.apply_updates(Side::R, batch.clone()),
            repl.apply_updates(Side::R, batch)
        );
        let w = Rect::from_coords(0.0, 0.0, 35.0, 35.0);
        let (fr, _) = flat.connect();
        let (rr, _) = repl.connect();
        assert_eq!(
            fr.request(&Request::Count(w)),
            rr.request(&Request::Count(w))
        );
        let t = rr.fleet().expect("fleet telemetry").snapshot();
        assert!(t.per_replica.iter().all(|row| row.len() == 2));
        assert!(t.health.iter().all(|row| row.len() == 2));
        assert!(t.failed_shards.is_empty());
    }

    #[test]
    fn single_replica_fleet_is_byte_identical() {
        let build = |explicit: bool| {
            let mut b = DeploymentBuilder::new(pts(40, 0.0), pts(40, 2.0)).with_shards(3, 2);
            if explicit {
                b = b.with_replicas(1);
            }
            b.build()
        };
        let plain = build(false);
        let one = build(true);
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (pr, ps) = plain.connect();
        let (or, os) = one.connect();
        assert_eq!(
            pr.request(&Request::Count(w)),
            or.request(&Request::Count(w))
        );
        assert_eq!(
            ps.request(&Request::Window(w)),
            os.request(&Request::Window(w))
        );
        assert_eq!(pr.meter().snapshot(), or.meter().snapshot());
        assert_eq!(ps.meter().snapshot(), os.meter().snapshot());
    }

    #[test]
    fn replicated_faulted_fleet_fails_over_and_matches_clean() {
        // Replication without sharding: an implicit 1-shard fleet per
        // side owns the replica sets. Each replica edge draws from a
        // decorrelated fault stream, so a drop on one sibling fails over
        // to the other instead of spending retry budget.
        let clean = Deployment::in_process(pts(40, 0.0), pts(40, 5.0), NetConfig::default());
        let lossy = DeploymentBuilder::new(pts(40, 0.0), pts(40, 5.0))
            .with_replicas(2)
            .with_net(NetConfig::default().with_retry(asj_net::RetryPolicy::attempts(4)))
            .with_faults(FaultPlan::seeded(21).with_drops(0.4))
            .build();
        assert_eq!(lossy.shard_counts(), (1, 1));
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (cr, _) = clean.connect();
        let (lr, _) = lossy.connect();
        for _ in 0..6 {
            assert_eq!(
                cr.request(&Request::Count(w)),
                lr.request(&Request::Count(w))
            );
        }
        let snap = lr.meter().snapshot();
        assert!(snap.failovers > 0, "a sibling must cover a drop at seed 21");
        assert_eq!(snap.abandoned, 0);
        let t = lr.fleet().expect("fleet telemetry").snapshot();
        assert!(t.failed_shards.is_empty());
        // Conservation holds through failover: replica rows sum to their
        // shard, shards sum to the aggregate meter.
        assert_eq!(t.summed(), snap);
        for (shard, row) in t.per_shard.iter().zip(&t.per_replica) {
            let row_sum = row
                .iter()
                .fold(asj_net::LinkSnapshot::default(), |acc, r| acc.plus(r));
            assert_eq!(&row_sum, shard);
        }
    }

    #[test]
    #[should_panic(expected = "allow_partial cannot run with the client cache")]
    fn allow_partial_refuses_the_client_cache() {
        let _ = DeploymentBuilder::new(pts(5, 0.0), pts(5, 0.0))
            .with_net(NetConfig::default().with_allow_partial(true))
            .with_client_cache(true)
            .build();
    }

    #[test]
    fn cooperative_flag_controls_policy() {
        let coop = DeploymentBuilder::new(pts(10, 0.0), pts(10, 0.0))
            .cooperative()
            .build();
        assert!(coop.is_cooperative());
        let (r, _) = coop.connect();
        assert!(matches!(
            r.request(&Request::CoopLevelMbrs(0)),
            asj_net::Response::Rects(_)
        ));

        let strict = Deployment::in_process(pts(10, 0.0), pts(10, 0.0), NetConfig::default());
        let (r, _) = strict.connect();
        assert_eq!(
            r.request(&Request::CoopLevelMbrs(0)),
            asj_net::Response::Refused
        );
    }
}
