//! Deployment: the two servers, the network, the device's resources.

use std::sync::Arc;

use asj_geom::{Rect, SpatialObject};
use asj_net::{ChannelServer, Link, NetConfig, QueryHandler};
use asj_server::{RTreeStore, ServicePolicy, SpatialService};

/// The default device buffer: the paper's 800 points ("40 % of the total
/// data size for the synthetic datasets").
pub const DEFAULT_BUFFER: usize = 800;

enum Carrier {
    InProc(Arc<dyn QueryHandler>),
    Channel {
        handle: asj_net::ServerHandle,
        _server: ChannelServer,
    },
}

impl Carrier {
    fn link(&self, net: &NetConfig, tariff: f64) -> Link {
        match self {
            Carrier::InProc(h) => Link::new(Box::new(InProcDyn(Arc::clone(h))), net.packet, tariff),
            Carrier::Channel { handle, .. } => {
                Link::new(Box::new(handle.connect()), net.packet, tariff)
            }
        }
    }
}

/// Adapter: `InProcExchange` is generic; deployments hold `dyn` handlers.
struct InProcDyn(Arc<dyn QueryHandler>);

impl asj_net::RawExchange for InProcDyn {
    fn exchange(&self, request: bytes::Bytes) -> bytes::Bytes {
        let req = asj_net::codec::decode_request(request).expect("malformed request");
        asj_net::codec::encode_response(&self.0.handle(req))
    }
}

/// A ready-to-join deployment: server R, server S, the network
/// configuration, the device's buffer size and the global data space.
///
/// Construct via [`Deployment::in_process`] / [`Deployment::threaded`] or
/// the full [`DeploymentBuilder`]. Each [`DistributedJoin::run`] call opens
/// fresh metered links, so reports never bleed into each other.
///
/// [`DistributedJoin::run`]: crate::DistributedJoin::run
pub struct Deployment {
    r: Carrier,
    s: Carrier,
    net: NetConfig,
    buffer_capacity: usize,
    space: Rect,
    cooperative: bool,
}

impl Deployment {
    /// In-process deployment (fast; used by the experiment sweeps) with
    /// non-cooperative R-tree servers and default network/buffer.
    pub fn in_process(r: Vec<SpatialObject>, s: Vec<SpatialObject>, net: NetConfig) -> Self {
        DeploymentBuilder::new(r, s).with_net(net).build()
    }

    /// Deployment with each server on its own thread behind a channel —
    /// the distributed topology of the paper's prototype.
    pub fn threaded(r: Vec<SpatialObject>, s: Vec<SpatialObject>, net: NetConfig) -> Self {
        DeploymentBuilder::new(r, s)
            .with_net(net)
            .threaded()
            .build()
    }

    /// Fresh metered links `(R, S)` for one algorithm run.
    pub fn connect(&self) -> (Link, Link) {
        (
            self.r.link(&self.net, self.net.tariff_r),
            self.s.link(&self.net, self.net.tariff_s),
        )
    }

    /// The global data space the join partitions.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Device buffer capacity in objects.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_capacity
    }

    /// Network configuration.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// `true` when the servers were built with the cooperative extension
    /// (required by the SemiJoin baseline).
    pub fn is_cooperative(&self) -> bool {
        self.cooperative
    }
}

/// Builder for [`Deployment`].
pub struct DeploymentBuilder {
    r_objects: Vec<SpatialObject>,
    s_objects: Vec<SpatialObject>,
    net: NetConfig,
    buffer_capacity: usize,
    space: Option<Rect>,
    cooperative: bool,
    threaded: bool,
    rtree_fanout: usize,
}

impl DeploymentBuilder {
    pub fn new(r_objects: Vec<SpatialObject>, s_objects: Vec<SpatialObject>) -> Self {
        DeploymentBuilder {
            r_objects,
            s_objects,
            net: NetConfig::default(),
            buffer_capacity: DEFAULT_BUFFER,
            space: None,
            cooperative: false,
            threaded: false,
            rtree_fanout: asj_rtree::DEFAULT_MAX_ENTRIES,
        }
    }

    /// Network parameters (MTU, headers, tariffs).
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Device buffer in objects (the paper sweeps 100 and 800).
    pub fn with_buffer(mut self, capacity: usize) -> Self {
        self.buffer_capacity = capacity;
        self
    }

    /// Explicit global space (defaults to the union of both datasets'
    /// bounds).
    pub fn with_space(mut self, space: Rect) -> Self {
        self.space = Some(space);
        self
    }

    /// Enables the cooperative server extension (SemiJoin baseline only).
    pub fn cooperative(mut self) -> Self {
        self.cooperative = true;
        self
    }

    /// Runs each server on its own thread.
    pub fn threaded(mut self) -> Self {
        self.threaded = true;
        self
    }

    /// R-tree fanout of the server stores.
    pub fn with_rtree_fanout(mut self, fanout: usize) -> Self {
        self.rtree_fanout = fanout;
        self
    }

    pub fn build(self) -> Deployment {
        let policy = if self.cooperative {
            ServicePolicy::Cooperative
        } else {
            ServicePolicy::NonCooperative
        };
        let space = self.space.unwrap_or_else(|| {
            Rect::union_of(
                self.r_objects
                    .iter()
                    .chain(self.s_objects.iter())
                    .map(|o| o.mbr),
            )
            .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 1.0, 1.0))
        });
        let make = |objects: Vec<SpatialObject>, name: &str| -> Carrier {
            let service = Arc::new(
                SpatialService::new(RTreeStore::with_fanout(objects, self.rtree_fanout))
                    .with_policy(policy),
            );
            if self.threaded {
                let (server, handle) = ChannelServer::spawn(service, name);
                Carrier::Channel {
                    handle,
                    _server: server,
                }
            } else {
                Carrier::InProc(service)
            }
        };
        Deployment {
            r: make(self.r_objects, "R"),
            s: make(self.s_objects, "S"),
            net: self.net,
            buffer_capacity: self.buffer_capacity,
            space,
            cooperative: self.cooperative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_net::Request;

    fn pts(n: u32, offset: f64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| SpatialObject::point(i, offset + i as f64, offset))
            .collect()
    }

    #[test]
    fn default_space_is_union_of_bounds() {
        let d = Deployment::in_process(pts(10, 0.0), pts(10, 100.0), NetConfig::default());
        assert_eq!(d.space(), Rect::from_coords(0.0, 0.0, 109.0, 100.0));
        assert_eq!(d.buffer_capacity(), DEFAULT_BUFFER);
        assert!(!d.is_cooperative());
    }

    #[test]
    fn fresh_links_have_fresh_meters() {
        let d = Deployment::in_process(pts(10, 0.0), pts(10, 0.0), NetConfig::default());
        let (r1, _s1) = d.connect();
        r1.request(Request::Count(d.space()));
        assert_eq!(r1.meter().snapshot().count_queries, 1);
        let (r2, _s2) = d.connect();
        assert_eq!(r2.meter().snapshot().count_queries, 0);
    }

    #[test]
    fn threaded_and_inproc_answer_identically() {
        let a = Deployment::in_process(pts(50, 0.0), pts(50, 5.0), NetConfig::default());
        let b = Deployment::threaded(pts(50, 0.0), pts(50, 5.0), NetConfig::default());
        let w = Rect::from_coords(0.0, 0.0, 25.0, 25.0);
        let (ra, sa) = a.connect();
        let (rb, sb) = b.connect();
        assert_eq!(
            ra.request(Request::Count(w)).into_count(),
            rb.request(Request::Count(w)).into_count()
        );
        assert_eq!(
            sa.request(Request::Window(w)).into_objects(),
            sb.request(Request::Window(w)).into_objects()
        );
        assert_eq!(
            ra.meter().snapshot().total_bytes(),
            rb.meter().snapshot().total_bytes()
        );
    }

    #[test]
    fn cooperative_flag_controls_policy() {
        let coop = DeploymentBuilder::new(pts(10, 0.0), pts(10, 0.0))
            .cooperative()
            .build();
        assert!(coop.is_cooperative());
        let (r, _) = coop.connect();
        assert!(matches!(
            r.request(Request::CoopLevelMbrs(0)),
            asj_net::Response::Rects(_)
        ));

        let strict = Deployment::in_process(pts(10, 0.0), pts(10, 0.0), NetConfig::default());
        let (r, _) = strict.connect();
        assert_eq!(
            r.request(Request::CoopLevelMbrs(0)),
            asj_net::Response::Refused
        );
    }
}
