//! SrJoin — Similarity Related Join (Section 4.2, Figure 5).

use asj_geom::Rect;

use crate::deploy::Deployment;
use crate::exec::{ExecCtx, Side};
use crate::report::{JoinError, JoinReport};
use crate::spec::JoinSpec;
use crate::DistributedJoin;

/// SrJoin compares the distributions of the **two datasets against each
/// other** instead of judging each in isolation (UpJoin's blind spot,
/// Figure 4: two equally-skewed but co-located datasets repartition
/// forever without pruning anything).
///
/// Per window (Fig. 5): COUNT the four quadrants of both datasets and
/// build two 4-bit *density bitmaps* — bit `i` set iff
/// `|Dwi| > ρ·(|Dw|/|Aw|)·|Awi|` (Eq. 11, density above a ρ-fraction of
/// the window average).
///
/// * **Bitmaps equal** → the distributions are similar; repartitioning
///   would not prune. Apply the cheaper of HBSJ/NLSJ per non-empty
///   quadrant (HBSJ decomposing recursively, with pruning, when the
///   buffer overflows).
/// * **Bitmaps differ** → expect more divergence below; recurse, unless
///   the quadrant is already cheap to finish (`< 3·Taq`, Fig. 5 line 16) —
///   the aggressive "repartitioning costs only its aggregate queries"
///   estimate.
#[derive(Debug, Clone, Copy)]
pub struct SrJoin {
    /// Density threshold ρ of Eq. (11) as a fraction of the window's
    /// average density. The paper tunes it in Fig. 6(b) and uses 30 %.
    pub rho: f64,
}

impl Default for SrJoin {
    fn default() -> Self {
        SrJoin { rho: 0.30 }
    }
}

impl SrJoin {
    /// SrJoin with a specific ρ (as a fraction, e.g. 0.3 for 30 %).
    pub fn with_rho(rho: f64) -> Self {
        assert!(rho > 0.0, "ρ must be positive");
        SrJoin { rho }
    }

    /// Density bitmap of one dataset over equal-area quadrants:
    /// `|Dwi| > ρ·|Dw|/4`.
    fn bitmap(&self, quadrant_counts: &[u64; 4], total: u64) -> [bool; 4] {
        let threshold = self.rho * total as f64 / 4.0;
        [
            quadrant_counts[0] as f64 > threshold,
            quadrant_counts[1] as f64 > threshold,
            quadrant_counts[2] as f64 > threshold,
            quadrant_counts[3] as f64 > threshold,
        ]
    }

    /// Applies the cheaper physical operator on a quadrant.
    fn apply_operator(
        &self,
        ctx: &mut ExecCtx<'_>,
        w: &Rect,
        count_r: u64,
        count_s: u64,
        depth: u32,
    ) {
        let costs = ctx.costs(w, count_r as f64, count_s as f64);
        let c1d = ctx
            .decision_cost()
            .c1_decomposed(count_r as f64, count_s as f64);
        let (nlsj_side, nlsj_cost) = costs.cheaper_nlsj();
        if c1d <= nlsj_cost {
            // `hbsj` falls back to recursive decomposition when the window
            // overflows the buffer, pruning as it goes.
            ctx.hbsj(w, count_r, count_s, depth);
        } else {
            ctx.nlsj(w, nlsj_side);
        }
    }

    fn step(&self, ctx: &mut ExecCtx<'_>, w: &Rect, count_r: u64, count_s: u64, depth: u32) {
        if count_r == 0 || count_s == 0 {
            ctx.stats.pruned_windows += 1;
            return;
        }
        if ctx.at_limit(w, depth) {
            ctx.forced(w, count_r, count_s);
            return;
        }
        let quads = w.quadrants();
        let qr = ctx.quadrant_counts(Side::R, &quads);
        let qs = ctx.quadrant_counts(Side::S, &quads);
        let bit_r = self.bitmap(&qr, count_r);
        let bit_s = self.bitmap(&qs, count_s);

        if bit_r == bit_s {
            // Similar distributions: no repartitioning, operate per
            // quadrant (Fig. 5 lines 6–11).
            for i in 0..4 {
                if qr[i] == 0 || qs[i] == 0 {
                    ctx.stats.pruned_windows += 1;
                    continue;
                }
                self.apply_operator(ctx, &quads[i], qr[i], qs[i], depth + 1);
            }
        } else {
            // Divergent distributions: recurse hoping to prune, unless the
            // quadrant is already cheap (Fig. 5 lines 12–19). One
            // discounted-model snapshot prices the whole round.
            let cost = ctx.decision_cost();
            let cheap = cost.cheap_threshold();
            for i in 0..4 {
                if qr[i] == 0 || qs[i] == 0 {
                    ctx.stats.pruned_windows += 1;
                    continue;
                }
                let costs = ctx.costs(&quads[i], qr[i] as f64, qs[i] as f64);
                let c1d = cost.c1_decomposed(qr[i] as f64, qs[i] as f64);
                let (_, nlsj_cost) = costs.cheaper_nlsj();
                if c1d < cheap || nlsj_cost < cheap {
                    self.apply_operator(ctx, &quads[i], qr[i], qs[i], depth + 1);
                } else {
                    ctx.stats.splits += 1;
                    self.step(ctx, &quads[i], qr[i], qs[i], depth + 1);
                }
            }
        }
    }
}

impl DistributedJoin for SrJoin {
    fn name(&self) -> &'static str {
        "srjoin"
    }

    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError> {
        let mut ctx = ExecCtx::new(deployment, spec);
        let space = ctx.space;
        let (count_r, count_s) = ctx.counts(&space);
        if count_r > 0 && count_s > 0 {
            self.step(&mut ctx, &space, count_r, count_s, 0);
        }
        Ok(ctx.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use crate::naive::NaiveJoin;
    use asj_geom::SpatialObject;

    fn cluster(n: u32, cx: f64, cy: f64, id0: u32, spread: f64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::point(
                    id0 + i,
                    cx + (i % 10) as f64 * spread,
                    cy + (i / 10) as f64 * spread,
                )
            })
            .collect()
    }

    fn lattice(n: u32, step: f64, id0: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| {
                SpatialObject::point(
                    id0 + i,
                    (i % n) as f64 * step + 3.0,
                    (i / n) as f64 * step + 3.0,
                )
            })
            .collect()
    }

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn bitmap_thresholding() {
        let sr = SrJoin::default();
        // 1000 objects, ρ = 0.3 → threshold 75.
        assert_eq!(
            sr.bitmap(&[1000, 74, 76, 0], 1000),
            [true, false, true, false]
        );
        // All-equal quadrants of a uniform window are all dense.
        assert_eq!(sr.bitmap(&[250, 250, 250, 250], 1000), [true; 4]);
    }

    #[test]
    fn correct_on_clusters() {
        let r = cluster(120, 480.0, 500.0, 0, 1.5);
        let s = cluster(120, 490.0, 505.0, 5000, 1.5);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(6.0);
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = SrJoin::default().run(&dep, &spec).unwrap().pairs;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn correct_on_uniformish_data_small_buffer() {
        let r = lattice(20, 48.0, 0);
        let s = lattice(20, 48.0, 10_000);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(100) // forces HBSJ decomposition
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(10.0);
        let mut want: Vec<_> = {
            // Brute-force oracle (naive can't run with buffer 100).
            let r = lattice(20, 48.0, 0);
            let s = lattice(20, 48.0, 10_000);
            asj_geom::sweep::nested_loop_join(&r, &s, &spec.predicate)
        };
        let rep = SrJoin::default().run(&dep, &spec).unwrap();
        let mut got = rep.pairs.clone();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(
            rep.peak_buffer <= 100,
            "buffer violated: {}",
            rep.peak_buffer
        );
    }

    #[test]
    fn disjoint_divergent_clusters_prune_immediately() {
        let r = cluster(500, 100.0, 100.0, 0, 0.5);
        let s = cluster(500, 900.0, 900.0, 5000, 0.5);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let rep = SrJoin::default()
            .run(&dep, &JoinSpec::distance_join(5.0))
            .unwrap();
        assert!(rep.pairs.is_empty());
        assert_eq!(rep.objects_downloaded(), 0);
        // 2 global + 8 quadrant counts, nothing else.
        assert_eq!(rep.aggregate_queries(), 10);
    }

    #[test]
    fn similar_co_located_clusters_do_not_recurse_forever() {
        // Figure 4's trap: both datasets clustered identically. Bitmaps
        // are equal at the top, so SrJoin must apply operators instead of
        // recursing.
        let r = cluster(400, 480.0, 480.0, 0, 2.0);
        let s = cluster(400, 482.0, 481.0, 5000, 2.0);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(900)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(5.0);
        let rep = SrJoin::default().run(&dep, &spec).unwrap();
        assert_eq!(
            rep.stats.splits, 0,
            "similar distributions: no SrJoin recursion"
        );
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = rep.pairs.clone();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
    }
}
