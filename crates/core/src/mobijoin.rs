//! MobiJoin — the prior art the paper improves on (Section 3.2, [9]).

use asj_geom::Rect;

use crate::deploy::Deployment;
use crate::exec::ExecCtx;
use crate::report::{JoinError, JoinReport};
use crate::spec::JoinSpec;
use crate::DistributedJoin;

/// MobiJoin: COUNT both datasets for the current window, prune if either
/// is empty, otherwise estimate `c1…c4` and follow the cheapest action;
/// `c4` (repartition into a fixed 2×2 grid) is estimated under the
/// **uniformity heuristic** — "MobiJoin assumes that w is uniform and small
/// enough so that every subwindow will be processed by HBSJ after only one
/// partitioning".
///
/// That heuristic is the point: it reproduces the pathologies of Figure 2
/// (choosing NLSJ where one more split would prune everything; choosing a
/// barely-feasible HBSJ that downloads two overlapping clusters wholesale
/// when more memory is available), which Figures 7–8 then quantify.
/// The repartitioning grid is fixed at `k = 2` as in the paper: "each
/// recursive step (action c4) divides the space into a regular k × k grid,
/// where k is fixed to 2" (larger `k` inflates the aggregate-query
/// overhead, as Section 3.2 notes).
#[derive(Debug, Clone, Copy, Default)]
pub struct MobiJoin;

impl MobiJoin {
    fn step(&self, ctx: &mut ExecCtx<'_>, w: &Rect, count_r: u64, count_s: u64, depth: u32) {
        if count_r == 0 || count_s == 0 {
            ctx.stats.pruned_windows += 1;
            return;
        }
        let costs = ctx.costs(w, count_r as f64, count_s as f64);
        let (nlsj_side, nlsj_cost) = costs.cheaper_nlsj();
        let c4 = if ctx.at_limit(w, depth) {
            f64::INFINITY // cannot repartition further
        } else {
            ctx.c4_mobijoin(count_r as f64, count_s as f64)
        };

        let best_known = match costs.c1 {
            Some(c1) => c1.min(nlsj_cost),
            None => nlsj_cost,
        };
        if c4 < best_known {
            // Repartition: pay the aggregate queries, recurse.
            ctx.stats.splits += 1;
            let quads = w.quadrants();
            let qr = ctx.quadrant_counts(crate::exec::Side::R, &quads);
            let qs = ctx.quadrant_counts(crate::exec::Side::S, &quads);
            for i in 0..4 {
                self.step(ctx, &quads[i], qr[i], qs[i], depth + 1);
            }
        } else if costs.c1.is_some_and(|c1| c1 <= nlsj_cost) {
            if ctx.hbsj_leaf_counted(w, Some(count_s)).is_err() {
                // Counts said it fits; the buffer disagreed (cannot happen
                // with exact counts, kept as a defensive fallback).
                ctx.forced(w, count_r, count_s);
            }
        } else {
            ctx.nlsj(w, nlsj_side);
        }
    }
}

impl DistributedJoin for MobiJoin {
    fn name(&self) -> &'static str {
        "mobijoin"
    }

    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError> {
        let mut ctx = ExecCtx::new(deployment, spec);
        let space = ctx.space;
        let (count_r, count_s) = ctx.counts(&space);
        self.step(&mut ctx, &space, count_r, count_s, 0);
        Ok(ctx.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use crate::naive::NaiveJoin;
    use asj_geom::SpatialObject;

    fn cluster(n: u32, cx: f64, cy: f64, id0: u32, spread: f64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::point(
                    id0 + i,
                    cx + (i % 10) as f64 * spread,
                    cy + (i / 10) as f64 * spread,
                )
            })
            .collect()
    }

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn correct_on_overlapping_clusters() {
        let r = cluster(100, 500.0, 500.0, 0, 1.0);
        let s = cluster(100, 502.0, 500.0, 1000, 1.0);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(800)
            .with_space(space())
            .build();
        let spec = JoinSpec::distance_join(4.0);
        let mut want = NaiveJoin.run(&dep, &spec).unwrap().pairs;
        let mut got = MobiJoin.run(&dep, &spec).unwrap().pairs;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn prunes_disjoint_clusters() {
        let r = cluster(100, 100.0, 100.0, 0, 1.0);
        let s = cluster(100, 900.0, 900.0, 1000, 1.0);
        let dep = DeploymentBuilder::new(r, s)
            .with_buffer(150) // HBSJ on the whole space infeasible
            .with_space(space())
            .build();
        let rep = MobiJoin.run(&dep, &JoinSpec::distance_join(4.0)).unwrap();
        assert!(rep.pairs.is_empty());
        assert!(rep.stats.splits >= 1, "should have repartitioned");
        assert_eq!(rep.objects_downloaded(), 0, "everything prunable");
    }

    #[test]
    fn figure_2b_pathology_more_memory_more_bytes() {
        // Figure 2(b): R clusters in SW+NE, S clusters in SE+NE — only the
        // NE quadrant has both. With buffer 1200 MobiJoin must split, the
        // three single-sided quadrants prune, and only NE (500+500) is
        // downloaded. With buffer 2000 the whole space fits HBSJ and
        // MobiJoin downloads *everything*: more memory, more bytes.
        let mk_r = |id0: u32| {
            let mut v = cluster(500, 100.0, 100.0, id0, 0.5);
            v.extend(cluster(500, 850.0, 850.0, id0 + 500, 0.5));
            v
        };
        let mk_s = |id0: u32| {
            let mut v = cluster(500, 850.0, 100.0, id0, 0.5);
            v.extend(cluster(500, 851.0, 850.0, id0 + 500, 0.5));
            v
        };
        let spec = JoinSpec::distance_join(2.0);
        let small = DeploymentBuilder::new(mk_r(0), mk_s(10_000))
            .with_buffer(1200)
            .with_space(space())
            .build();
        let big = DeploymentBuilder::new(mk_r(0), mk_s(10_000))
            .with_buffer(2000)
            .with_space(space())
            .build();
        let rep_small = MobiJoin.run(&small, &spec).unwrap();
        let rep_big = MobiJoin.run(&big, &spec).unwrap();
        let mut a = rep_small.pairs.clone();
        let mut b = rep_big.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "results must agree regardless of buffer");
        assert!(
            rep_big.total_bytes() >= rep_small.total_bytes(),
            "the paper's 2(b) pathology: more memory should not help MobiJoin here \
             (small={}, big={})",
            rep_small.total_bytes(),
            rep_big.total_bytes()
        );
    }

    #[test]
    fn identical_tiny_datasets_single_hbsj() {
        let r = cluster(20, 500.0, 500.0, 0, 1.0);
        let dep = DeploymentBuilder::new(r.clone(), r)
            .with_buffer(800)
            .with_space(space())
            .build();
        let rep = MobiJoin.run(&dep, &JoinSpec::distance_join(2.0)).unwrap();
        assert_eq!(rep.stats.hbsj_runs, 1);
        assert_eq!(rep.stats.splits, 0, "tiny data: no repartitioning pays");
    }
}
