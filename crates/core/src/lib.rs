//! # asj-core — ad-hoc distributed spatial joins (the paper's contribution)
//!
//! Implements Sections 3–4 of *Ad-hoc Distributed Spatial Joins on Mobile
//! Devices* (IPDPS 2006): the transfer-cost model and the client-side join
//! algorithms that drive two non-cooperative spatial servers from a
//! memory-constrained device while minimizing transferred bytes.
//!
//! ## Algorithms
//!
//! | Type | Paper | Strategy |
//! |------|-------|----------|
//! | [`NaiveJoin`] | §3 strawman | download both datasets, join on device |
//! | [`GridJoin`] | §3 strawman | fixed grid, COUNT-prune, per-cell HBSJ |
//! | [`MobiJoin`] | §3.2, [9] | recursive 2×2, cost-based operator choice under a uniformity heuristic |
//! | [`UpJoin`] | §4.1, Fig. 3 | per-dataset uniformity tests decide *when statistics stop paying* |
//! | [`SrJoin`] | §4.2, Fig. 5 | density-bitmap similarity of the two datasets decides repartitioning |
//! | [`SemiJoin`] | §5.3, [16] | R-tree level MBR semi-join via cooperative servers (baseline) |
//!
//! All algorithms speak only `WINDOW`/`COUNT`/`ε-RANGE` (+ bucket) through
//! metered links; every byte they report comes from the wire meters, not
//! from the cost model. The cost model ([`CostModel`]) is used for
//! *decisions* — exactly the separation the real prototype had.
//!
//! ## Batched statistics (opt-in)
//!
//! When a deployment's `NetConfig::batched_stats` capability is on, the
//! quadrant COUNTs of every repartitioning round go out as one
//! `MultiCount` message per server instead of `k²` separate COUNT round
//! trips — [`ExecCtx::quadrant_counts`] switches carriers, and the cost
//! model's split-cost helpers ([`CostModel::taq_batched`],
//! [`CostModel::stats_round`], [`CostModel::split_stats_cost`]) price the
//! batched framing so decisions stay consistent with what the meters
//! measure. MobiJoin, UpJoin, SrJoin and GridJoin all benefit without
//! per-algorithm changes. **The flag defaults to off**: per-query mode is
//! byte-identical to the paper-faithful protocol, and batched mode changes
//! statistics traffic only — join results are identical by construction
//! (same extended windows, same answers).
//!
//! ## Sharded server fleets (opt-in)
//!
//! [`DeploymentBuilder::with_shards`] partitions each side across a fleet
//! of shard servers (space-split assignment, boundary straddlers covered
//! by advertised bounds) reached through a client-side scatter-gather
//! router that implements the same carrier seam the single-server
//! deployment uses — `ExecCtx` and every algorithm work unchanged. The
//! router prunes shards whose bounds miss the query window, sub-batches
//! `MultiCount`/bucket probes, merges and deduplicates answers, and
//! meters per shard and in aggregate; [`CostModel::with_fanout`] teaches
//! operator decisions the per-round fan-out factor the meters will
//! measure. A fleet of one is byte-identical on the wire to a flat
//! deployment, and the `tests/sharded.rs` differential suite proves every
//! algorithm returns identical pairs at any shard count.
//!
//! ## Join semantics
//!
//! MBR intersection joins, ε-distance joins, and the iceberg distance
//! semi-join (objects of R with ≥ m partners in S) — see [`JoinSpec`].
//! Output pairs are exactly-once via reference-point duplicate avoidance;
//! integration tests verify every algorithm against a brute-force oracle.

pub mod cost;
pub mod deploy;
pub mod exec;
pub mod gridjoin;
pub mod mobijoin;
pub mod naive;
pub mod report;
pub mod semijoin;
pub mod spec;
pub mod srjoin;
pub mod upjoin;

pub use cost::CostModel;
pub use deploy::{Deployment, DeploymentBuilder};
pub use exec::{ExecCtx, ExecStats, Side};
pub use gridjoin::GridJoin;
pub use mobijoin::MobiJoin;
pub use naive::NaiveJoin;
pub use report::{JoinError, JoinReport};
pub use semijoin::SemiJoin;
pub use spec::{JoinSpec, OutputKind};
pub use srjoin::SrJoin;
pub use upjoin::UpJoin;

/// A distributed spatial join algorithm runnable against a deployment.
pub trait DistributedJoin {
    /// Short identifier used in reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Executes the join, returning the result pairs and the full byte
    /// accounting.
    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError>;
}
