//! The download-everything strawman.

use crate::deploy::Deployment;
use crate::exec::ExecCtx;
use crate::report::{JoinError, JoinReport};
use crate::spec::JoinSpec;
use crate::DistributedJoin;

/// "The simplest way to execute the spatial join is to download both
/// datasets to the PDA and perform the join there. In general, this is an
/// infeasible solution, since mobile devices have limited storage
/// capability." (Section 3.)
///
/// Faithfully infeasible: errors with [`JoinError::Buffer`] when the two
/// datasets exceed the device buffer instead of silently partitioning.
/// Two COUNT queries check feasibility before any download.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveJoin;

impl DistributedJoin for NaiveJoin {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn run(&self, deployment: &Deployment, spec: &JoinSpec) -> Result<JoinReport, JoinError> {
        let mut ctx = ExecCtx::new(deployment, spec);
        let space = ctx.space;
        let (count_r, count_s) = ctx.counts(&space);
        let total = (count_r + count_s) as usize;
        if total > ctx.buffer.capacity() {
            return Err(JoinError::Buffer(asj_device::BufferExceeded {
                requested: total,
                capacity: ctx.buffer.capacity(),
            }));
        }
        if count_r > 0 && count_s > 0 {
            ctx.hbsj_leaf(&space)?;
        }
        Ok(ctx.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use asj_geom::{Rect, SpatialObject};

    fn pts(n: u32, id0: u32) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| SpatialObject::point(id0 + i, (i * 7 % 100) as f64, (i * 13 % 100) as f64))
            .collect()
    }

    #[test]
    fn joins_when_everything_fits() {
        let dep = DeploymentBuilder::new(pts(50, 0), pts(50, 0))
            .with_buffer(200)
            .with_space(Rect::from_coords(0.0, 0.0, 100.0, 100.0))
            .build();
        let rep = NaiveJoin.run(&dep, &JoinSpec::distance_join(0.0)).unwrap();
        assert_eq!(rep.pairs.len(), 50, "each point matches itself");
        // Exactly 2 COUNTs + 2 WINDOWs.
        assert_eq!(rep.aggregate_queries(), 2);
        assert_eq!(rep.link_r.window_queries + rep.link_s.window_queries, 2);
        assert_eq!(rep.objects_downloaded(), 100);
    }

    #[test]
    fn errors_when_buffer_too_small() {
        let dep = DeploymentBuilder::new(pts(50, 0), pts(50, 0))
            .with_buffer(99)
            .build();
        let err = NaiveJoin
            .run(&dep, &JoinSpec::distance_join(1.0))
            .unwrap_err();
        assert!(matches!(err, JoinError::Buffer(_)));
    }

    #[test]
    fn empty_side_short_circuits() {
        let dep = DeploymentBuilder::new(pts(50, 0), vec![])
            .with_buffer(200)
            .build();
        let rep = NaiveJoin.run(&dep, &JoinSpec::distance_join(1.0)).unwrap();
        assert!(rep.pairs.is_empty());
        assert_eq!(rep.objects_downloaded(), 0, "nothing downloaded");
    }
}
