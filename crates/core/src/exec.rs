//! Execution context: metered links, device resources, and the two
//! physical join operators every algorithm composes.
//!
//! * **HBSJ** (`c1`) — download both windows, join in device memory
//!   ([`ExecCtx::hbsj_leaf`]); [`ExecCtx::hbsj`] adds the recursive
//!   quadrant decomposition with COUNT pruning used when a window
//!   overflows the buffer.
//! * **NLSJ** (`c2`/`c3`) — download the outer window, probe the inner
//!   server with one ε-RANGE per object or one bucket request
//!   ([`ExecCtx::nlsj`]). The outer side streams: the PDA never holds more
//!   than one response at a time, so NLSJ has no buffer constraint (as the
//!   paper assumes).
//!
//! Every server interaction uses the ε/2-extended window
//! ([`ExecCtx::ext`]) and every emitted pair passes the reference-point
//! filter against the *core* window, so COUNT-based pruning is sound and
//! output is exactly-once regardless of how algorithms partition space.

use asj_device::{memjoin, BufferExceeded, DeviceBuffer, ResultCollector};
use asj_geom::{reference_point_in, Rect, SpatialObject};
use asj_net::{Link, Request};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cost::CostModel;
use crate::deploy::Deployment;
use crate::report::JoinReport;
use crate::spec::{JoinSpec, OutputKind};

/// Which server a request goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    R,
    S,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::R => Side::S,
            Side::S => Side::R,
        }
    }
}

/// Operator and recursion statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Repartitioning (2×2 split) steps.
    pub splits: u32,
    /// In-memory HBSJ executions.
    pub hbsj_runs: u32,
    /// NLSJ executions (windows, not probes).
    pub nlsj_runs: u32,
    /// Windows pruned because one side counted zero.
    pub pruned_windows: u32,
    /// Recursion-limit fallbacks (degenerate inputs only).
    pub forced_fallbacks: u32,
}

/// Costs of the three physical choices on one window.
#[derive(Debug, Clone, Copy)]
pub struct OperatorCosts {
    /// HBSJ; `None` when the buffer cannot hold the window.
    pub c1: Option<f64>,
    /// NLSJ with R as outer.
    pub c2: f64,
    /// NLSJ with S as outer.
    pub c3: f64,
}

impl OperatorCosts {
    /// The cheaper NLSJ orientation: `(outer side, cost)`.
    pub fn cheaper_nlsj(&self) -> (Side, f64) {
        if self.c2 <= self.c3 {
            (Side::R, self.c2)
        } else {
            (Side::S, self.c3)
        }
    }

    /// `true` when HBSJ is feasible and beats both NLSJ orientations.
    pub fn hbsj_wins(&self) -> bool {
        match self.c1 {
            Some(c1) => c1 < self.cheaper_nlsj().1,
            None => false,
        }
    }
}

/// Everything one algorithm run needs.
pub struct ExecCtx<'a> {
    link_r: Link,
    link_s: Link,
    /// The device's bounded buffer.
    pub buffer: DeviceBuffer,
    /// Result accumulation (exactly-once verified in debug builds).
    pub out: ResultCollector,
    /// The join being executed.
    pub spec: &'a JoinSpec,
    /// The global data space.
    pub space: Rect,
    /// The decision cost model.
    pub cost: CostModel,
    /// Device-local randomness (UpJoin's confirming COUNT placement).
    pub rng: ChaCha8Rng,
    /// Run statistics.
    pub stats: ExecStats,
    max_depth: u32,
    min_window: f64,
    /// Resolved worker count for the in-memory join kernels (the
    /// deployment's [`NetConfig::sweep_workers`](asj_net::NetConfig) with
    /// `0` mapped to available parallelism). Result-identical at every
    /// value.
    sweep_workers: usize,
}

impl<'a> ExecCtx<'a> {
    /// Opens fresh links against the deployment.
    pub fn new(deployment: &Deployment, spec: &'a JoinSpec) -> Self {
        let (link_r, link_s) = deployment.connect();
        let space = deployment.space();
        let (shards_r, shards_s) = deployment.shard_counts();
        // The recursion floor must use the same scale as both guards in
        // `at_limit`: on an elongated space, deriving it from the width
        // alone leaves the height guard with the wrong scale.
        let max_dim = space.width().max(space.height());
        let min_window = (4.0 * spec.extension()).max(max_dim * 1e-7);
        ExecCtx {
            link_r,
            link_s,
            buffer: DeviceBuffer::new(deployment.buffer_capacity()),
            // A live deployment can race a writer: disjoint-window reads
            // are distinct snapshots, so a moving object may honestly
            // re-derive a pair — collapse instead of double-reporting.
            out: if deployment.is_live() {
                ResultCollector::deduplicating()
            } else {
                ResultCollector::new()
            },
            spec,
            space,
            cost: CostModel::new(deployment.net(), deployment.buffer_capacity())
                .with_fanout(shards_r as f64, shards_s as f64)
                .with_replica_fanout(deployment.replica_count() as f64),
            rng: ChaCha8Rng::seed_from_u64(spec.seed),
            stats: ExecStats::default(),
            max_depth: 24,
            min_window,
            sweep_workers: deployment.sweep_workers(),
        }
    }

    /// The link to one server.
    pub fn link(&self, side: Side) -> &Link {
        match side {
            Side::R => &self.link_r,
            Side::S => &self.link_s,
        }
    }

    fn tariff(&self, side: Side) -> f64 {
        match side {
            Side::R => self.cost.tariff_r,
            Side::S => self.cost.tariff_s,
        }
    }

    fn fanout(&self, side: Side) -> f64 {
        match side {
            Side::R => self.cost.fanout_r,
            Side::S => self.cost.fanout_s,
        }
    }

    /// The cost model operator decisions should use *right now*: the base
    /// model with the client cache's observed hit rates applied as price
    /// discounts, so decisions track what the meters will measure. The
    /// rates are Laplace-smoothed — `(misses + 1) / (hits + misses + 1)`
    /// never reaches zero, so no operator ever looks free — and pooled
    /// over both links (one device, one cache policy). Without a cache
    /// this returns the base model unchanged (multipliers exactly `1.0`),
    /// keeping every decision bit-identical to an uncached build.
    pub fn decision_cost(&self) -> CostModel {
        let (mut sh, mut sm, mut wh, mut wm) = (0u64, 0u64, 0u64, 0u64);
        let mut cached = false;
        for link in [&self.link_r, &self.link_s] {
            if let Some(view) = link.cache() {
                cached = true;
                let snap = view.snapshot();
                sh += snap.stats_hits;
                sm += snap.stats_misses;
                wh += snap.window_hits;
                wm += snap.window_misses;
            }
        }
        if !cached {
            return self.cost;
        }
        let discount = |hits: u64, misses: u64| (misses + 1) as f64 / (hits + misses + 1) as f64;
        self.cost
            .with_cache_discount(discount(sh, sm), discount(wh, wm))
    }

    /// The window actually sent to servers for `w`: extended by ε/2 (plus
    /// the MBR hint) per side, clipped to nothing — servers tolerate
    /// windows reaching outside the space.
    pub fn ext(&self, w: &Rect) -> Rect {
        w.expand(self.spec.extension())
    }

    /// `COUNT` on the extended window.
    pub fn count(&self, side: Side, w: &Rect) -> u64 {
        self.link(side)
            .request(&Request::Count(self.ext(w)))
            .into_count()
    }

    /// Counts on both sides: `(|Rw|, |Sw|)`.
    pub fn counts(&self, w: &Rect) -> (u64, u64) {
        (self.count(Side::R, w), self.count(Side::S, w))
    }

    /// Batched `COUNT` on many windows in one `MultiCount` message:
    /// answers in probe order, same ε/2-extended windows as
    /// [`ExecCtx::count`]. Callers gate on
    /// [`CostModel::batched_stats`](crate::CostModel) — in per-query mode
    /// they issue individual COUNTs instead.
    ///
    /// The reply length is validated in every build (not just debug):
    /// quadrant counts feed pruning decisions, so a short or long
    /// `Counts` vector from a buggy server or cache layer must surface as
    /// a protocol error rather than silently misindex.
    pub fn multi_count(&self, side: Side, windows: &[Rect]) -> Vec<u64> {
        let ext: Vec<Rect> = windows.iter().map(|w| self.ext(w)).collect();
        let counts = self
            .link(side)
            .request(&Request::MultiCount(ext))
            .into_counts();
        validated_counts(windows.len(), counts)
    }

    /// Counts of the four quadrants of `w` on one side: 4 COUNT queries,
    /// or a single batched `MultiCount` when the deployment's
    /// [`NetConfig::batched_stats`](asj_net::NetConfig) capability is on.
    /// Same extended windows, same answers — only the framing differs, so
    /// every algorithm that repartitions benefits without changes.
    pub fn quadrant_counts(&self, side: Side, quads: &[Rect; 4]) -> [u64; 4] {
        if self.cost.batched_stats {
            let counts = self.multi_count(side, quads);
            [counts[0], counts[1], counts[2], counts[3]]
        } else {
            [
                self.count(side, &quads[0]),
                self.count(side, &quads[1]),
                self.count(side, &quads[2]),
                self.count(side, &quads[3]),
            ]
        }
    }

    /// `WINDOW` download of the extended window.
    pub fn download(&self, side: Side, w: &Rect) -> Vec<SpatialObject> {
        self.link(side)
            .request(&Request::Window(self.ext(w)))
            .into_objects()
    }

    /// Operator costs on `w` given (possibly estimated) counts. Dimensions
    /// for the ε-selectivity estimate come from the extended window —
    /// consistent with where probes actually land. Prices come from
    /// [`ExecCtx::decision_cost`], i.e. they carry the live cache-hit
    /// discount when a client cache is in play.
    pub fn costs(&self, w: &Rect, count_r: f64, count_s: f64) -> OperatorCosts {
        let ext = self.ext(w);
        let eps = self.spec.predicate.epsilon();
        let bucket = self.spec.bucket_nlsj;
        let cost = self.decision_cost();
        OperatorCosts {
            c1: cost.c1(count_r, count_s),
            c2: cost.nlsj(
                &ext,
                count_r,
                count_s,
                self.tariff(Side::R),
                self.tariff(Side::S),
                self.fanout(Side::R),
                self.fanout(Side::S),
                eps,
                bucket,
            ),
            c3: self.cost.nlsj(
                &ext,
                count_s,
                count_r,
                self.tariff(Side::S),
                self.tariff(Side::R),
                self.fanout(Side::S),
                self.fanout(Side::R),
                eps,
                bucket,
            ),
        }
    }

    /// `true` when recursion must stop (window shrunk to the ε scale or
    /// depth bound hit) and a physical operator must be forced.
    pub fn at_limit(&self, w: &Rect, depth: u32) -> bool {
        depth >= self.max_depth || w.width() <= self.min_window || w.height() <= self.min_window
    }

    /// The wire cost of one 2×2 repartitioning round of statistics:
    /// `2k² · Taq` with `k = 2` — four COUNTs to each server, or one
    /// batched `MultiCount` each when the capability is on. Delegates to
    /// the (cache-discounted) decision model so decisions price what
    /// [`ExecCtx::quadrant_counts`] will actually put on the wire.
    pub fn stats_cost_per_split(&self) -> f64 {
        self.decision_cost().split_stats_cost()
    }

    /// MobiJoin's `c4(w)` — Equation (8) evaluated entirely under the
    /// uniformity assumption (Section 3.2): quadrant counts are `|Dw|/4`
    /// at every level, the space is split until those estimated quarters
    /// fit the device buffer, and **every** resulting subwindow is assumed
    /// to finish with one HBSJ. No queries are issued; the estimate is
    /// pure arithmetic.
    ///
    /// This optimistic heuristic is the flaw Figures 2, 7 and 8 dissect:
    /// it never anticipates pruning (so on a skewed-but-co-located pair it
    /// gladly stops early and downloads everything the buffer can hold),
    /// and on a huge inner dataset it prices repartitioning at
    /// full-download cost, pushing MobiJoin into NLSJ "most of the time"
    /// (Fig. 8a).
    pub fn c4_mobijoin(&self, count_r: f64, count_s: f64) -> f64 {
        let capacity = self.buffer.capacity() as f64;
        let cost = self.decision_cost();
        let mut stats = 0.0;
        let mut windows_prev = 1.0; // windows being split at this level
        for level in 1..=12u32 {
            stats += cost.split_stats_cost() * windows_prev;
            let cells = 4f64.powi(level as i32);
            let (qr, qs) = (count_r / cells, count_s / cells);
            if qr + qs <= capacity || level == 12 {
                return stats + cells * cost.c1_unchecked(qr, qs);
            }
            windows_prev = cells;
        }
        unreachable!("loop always returns by level 12")
    }

    /// Reports a qualifying pair found while processing window `w`,
    /// applying the reference-point filter. `outer` tells which side
    /// `outer_obj` came from so the pair lands as `(r, s)`.
    fn report_pair(
        &mut self,
        outer: Side,
        outer_obj: &SpatialObject,
        inner_obj: &SpatialObject,
        w: &Rect,
    ) {
        let (r, s) = match outer {
            Side::R => (outer_obj, inner_obj),
            Side::S => (inner_obj, outer_obj),
        };
        if reference_point_in(r, s, &self.spec.predicate, w, &self.space) {
            self.out.push(r.id, s.id);
        }
    }

    /// HBSJ on one window that fits the buffer: download both sides, join
    /// in memory. Without a count hint the S side must be downloaded
    /// before its size is known; prefer [`ExecCtx::hbsj_leaf_counted`]
    /// when `|Sw|` is already known so the failure path never pays for S.
    pub fn hbsj_leaf(&mut self, w: &Rect) -> Result<(), BufferExceeded> {
        self.hbsj_leaf_counted(w, None)
    }

    /// HBSJ with the caller's known `|Sw|` (the extended-window COUNT).
    /// Fails without downloading — or paying for — the second side when
    /// `|Rw| + |Sw|` exceeds the buffer: the R window is downloaded and
    /// reserved, the hint is checked against the remaining capacity, and
    /// only then is S downloaded (and reserved incrementally, which also
    /// covers a hint that undershoots). Callers fall back to splitting.
    pub fn hbsj_leaf_counted(
        &mut self,
        w: &Rect,
        known_count_s: Option<u64>,
    ) -> Result<(), BufferExceeded> {
        let r_objs = self.download(Side::R, w);
        let r_hold = self.buffer.reserve(r_objs.len())?;
        if let Some(count_s) = known_count_s {
            if !self.buffer.fits(count_s as usize) {
                return Err(BufferExceeded {
                    requested: count_s as usize,
                    capacity: self.buffer.capacity(),
                });
            }
        }
        let s_objs = self.download(Side::S, w);
        let s_hold = self.buffer.reserve(s_objs.len())?;
        memjoin::grid_hash_join_with_workers(
            &r_objs,
            &s_objs,
            &self.spec.predicate,
            w,
            &self.space,
            self.sweep_workers,
            &mut self.out,
        );
        drop(s_hold);
        drop(r_hold);
        self.stats.hbsj_runs += 1;
        Ok(())
    }

    /// HBSJ with recursive quadrant decomposition: windows that overflow
    /// the buffer are split 2×2, children are COUNT-pruned and recursed —
    /// "if the data do not fit in memory, the cell can be recursively
    /// partitioned (e.g., PBSM)" plus SrJoin's "pruning can also be
    /// applied at each recursion level".
    pub fn hbsj(&mut self, w: &Rect, count_r: u64, count_s: u64, depth: u32) {
        if count_r == 0 || count_s == 0 {
            self.stats.pruned_windows += 1;
            return;
        }
        if (count_r + count_s) as usize <= self.buffer.capacity()
            && self.hbsj_leaf_counted(w, Some(count_s)).is_ok()
        {
            return;
        }
        if self.at_limit(w, depth) {
            self.forced(w, count_r, count_s);
            return;
        }
        self.stats.splits += 1;
        let quads = w.quadrants();
        let qr = self.quadrant_counts(Side::R, &quads);
        let qs = self.quadrant_counts(Side::S, &quads);
        for i in 0..4 {
            self.hbsj(&quads[i], qr[i], qs[i], depth + 1);
        }
    }

    /// NLSJ over `w` with the given outer side. Streams the outer window
    /// and probes the inner server per object (or in one bucket when the
    /// spec enables it).
    pub fn nlsj(&mut self, w: &Rect, outer: Side) {
        let outer_objs = self.download(outer, w);
        if outer_objs.is_empty() {
            return;
        }
        let eps = self.spec.predicate.epsilon();
        let inner = outer.other();
        if self.spec.bucket_nlsj {
            // Frame the bucket request around the downloaded window
            // without copying it — a hot path that used to clone the
            // entire outer window just to build the message — then take
            // the objects back out to pair them with the reply.
            let req = Request::BucketEpsRange {
                probes: outer_objs,
                eps,
            };
            let buckets = self.link(inner).request(&req).into_buckets();
            let Request::BucketEpsRange {
                probes: outer_objs, ..
            } = req
            else {
                unreachable!("request variant is fixed above")
            };
            // Validated in release too: zip would silently drop the
            // unmatched outer objects on a short reply (same defect
            // class `validated_counts` closes for `MultiCount`).
            if buckets.len() != outer_objs.len() {
                panic!(
                    "protocol mismatch: BucketEpsRange({}) answered with {} buckets",
                    outer_objs.len(),
                    buckets.len()
                );
            }
            for (o, matches) in outer_objs.iter().zip(buckets) {
                for m in matches {
                    self.report_pair(outer, o, &m, w);
                }
            }
        } else {
            for o in &outer_objs {
                let matches = self
                    .link(inner)
                    .request(&Request::EpsRange { q: o.mbr, eps })
                    .into_objects();
                for m in matches {
                    self.report_pair(outer, o, &m, w);
                }
            }
        }
        self.stats.nlsj_runs += 1;
    }

    /// Forces the cheapest feasible operator on `w` — the recursion-limit
    /// escape hatch (degenerate clustered data at the ε scale). NLSJ is
    /// always feasible because it streams.
    pub fn forced(&mut self, w: &Rect, count_r: u64, count_s: u64) {
        self.stats.forced_fallbacks += 1;
        let costs = self.costs(w, count_r as f64, count_s as f64);
        if costs.hbsj_wins() && self.hbsj_leaf_counted(w, Some(count_s)).is_ok() {
            return;
        }
        let (side, _) = costs.cheaper_nlsj();
        self.nlsj(w, side);
    }

    /// Closes the run into a report.
    pub fn finish(self, algorithm: &'static str) -> JoinReport {
        let link_r = self.link_r.meter().snapshot();
        let link_s = self.link_s.meter().snapshot();
        let fleet_r = self.link_r.fleet().map(|t| t.snapshot());
        let fleet_s = self.link_s.fleet().map(|t| t.snapshot());
        let cache_r = self.link_r.cache().map(|v| v.snapshot());
        let cache_s = self.link_s.cache().map(|v| v.snapshot());
        let cost_units = self.cost.tariff_r * link_r.total_bytes() as f64
            + self.cost.tariff_s * link_s.total_bytes() as f64;
        let peak_buffer = self.buffer.peak();
        let iceberg = match self.spec.output {
            OutputKind::Pairs => None,
            OutputKind::Iceberg { min_matches } => Some(self.out.iceberg(min_matches)),
        };
        // Worst case over both sides: a single uncovered shard on either
        // fleet already makes the pair list a subset.
        let coverage = [&fleet_r, &fleet_s]
            .into_iter()
            .flatten()
            .map(|f| f.coverage())
            .fold(1.0f64, f64::min);
        JoinReport {
            algorithm,
            pairs: self.out.into_pairs(),
            iceberg,
            link_r,
            link_s,
            fleet_r,
            fleet_s,
            cache_r,
            cache_s,
            coverage,
            cost_units,
            peak_buffer,
            stats: self.stats,
        }
    }
}

/// Validates a `Counts` reply against the number of probe windows sent,
/// panicking with the protocol-mismatch convention of
/// [`Response::into_counts`](asj_net::Response) — a named violation in
/// release builds too, instead of a short reply's opaque index panic or a
/// long reply's silently dropped entries.
fn validated_counts(want: usize, counts: Vec<u64>) -> Vec<u64> {
    if counts.len() != want {
        panic!(
            "protocol mismatch: MultiCount({want}) answered with {} counts",
            counts.len()
        );
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: u32, step: f64, id0: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| SpatialObject::point(id0 + i, (i % n) as f64 * step, (i / n) as f64 * step))
            .collect()
    }

    fn deployment(buffer: usize) -> Deployment {
        crate::deploy::DeploymentBuilder::new(grid_points(10, 10.0, 0), grid_points(10, 10.0, 0))
            .with_buffer(buffer)
            .with_space(Rect::from_coords(0.0, 0.0, 90.0, 90.0))
            .build()
    }

    #[test]
    fn counts_and_download_use_extended_windows() {
        let dep = deployment(800);
        let spec = JoinSpec::distance_join(10.0); // extension 5
        let ctx = ExecCtx::new(&dep, &spec);
        // Core window holds exactly one lattice point, the extension pulls
        // in the four neighbours at distance 10… extension is 5, so only
        // the point itself.
        let w = Rect::from_coords(48.0, 48.0, 52.0, 52.0);
        assert_eq!(ctx.count(Side::R, &w), 1);
        // Extension 5 on a ±2 window reaches ±7: still one point.
        assert_eq!(ctx.download(Side::R, &w).len(), 1);
        let w2 = Rect::from_coords(45.0, 45.0, 55.0, 55.0); // ±5 ext → [40,60]²
        assert_eq!(ctx.count(Side::R, &w2), 9);
    }

    #[test]
    fn hbsj_leaf_joins_and_respects_buffer() {
        let dep = deployment(800);
        let spec = JoinSpec::distance_join(0.5);
        let mut ctx = ExecCtx::new(&dep, &spec);
        let w = dep.space();
        ctx.hbsj_leaf(&w).unwrap();
        // Identical datasets: every point pairs with itself only (ε=0.5 <
        // lattice step 10).
        assert_eq!(ctx.out.len(), 100);
        assert_eq!(ctx.buffer.peak(), 200);
        assert_eq!(ctx.stats.hbsj_runs, 1);
    }

    #[test]
    fn hbsj_leaf_fails_cleanly_when_buffer_small() {
        let dep = deployment(50);
        let spec = JoinSpec::distance_join(0.5);
        let mut ctx = ExecCtx::new(&dep, &spec);
        assert!(ctx.hbsj_leaf(&dep.space()).is_err());
        assert_eq!(ctx.out.len(), 0);
    }

    #[test]
    fn hbsj_recursive_equals_leaf_result() {
        let spec = JoinSpec::distance_join(12.0);
        // Big buffer: single leaf.
        let dep_big = deployment(800);
        let mut big = ExecCtx::new(&dep_big, &spec);
        let (cr, cs) = big.counts(&dep_big.space());
        big.hbsj(&dep_big.space(), cr, cs, 0);
        let mut want = big.out.into_pairs();
        want.sort_unstable();

        // Tiny buffer: forced to decompose.
        let dep_small = deployment(60);
        let mut small = ExecCtx::new(&dep_small, &spec);
        let (cr, cs) = small.counts(&dep_small.space());
        small.hbsj(&dep_small.space(), cr, cs, 0);
        assert!(small.stats.splits > 0, "expected decomposition");
        assert!(small.buffer.peak() <= 60);
        let mut got = small.out.into_pairs();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn nlsj_matches_hbsj_both_orientations_and_bucket() {
        let spec0 = JoinSpec::distance_join(12.0);
        let dep = deployment(800);
        let mut h = ExecCtx::new(&dep, &spec0);
        h.hbsj_leaf(&dep.space()).unwrap();
        let mut want = h.out.into_pairs();
        want.sort_unstable();

        for (outer, bucket) in [
            (Side::R, false),
            (Side::S, false),
            (Side::R, true),
            (Side::S, true),
        ] {
            let spec = JoinSpec::distance_join(12.0).with_bucket_nlsj(bucket);
            let mut ctx = ExecCtx::new(&dep, &spec);
            ctx.nlsj(&dep.space(), outer);
            let mut got = ctx.out.into_pairs();
            got.sort_unstable();
            assert_eq!(got, want, "outer={outer:?} bucket={bucket}");
        }
    }

    #[test]
    fn operator_costs_orientation() {
        let dep = deployment(800);
        let spec = JoinSpec::distance_join(10.0);
        let ctx = ExecCtx::new(&dep, &spec);
        let c = ctx.costs(&dep.space(), 10.0, 1000.0);
        let (side, _) = c.cheaper_nlsj();
        assert_eq!(side, Side::R, "few outers should win");
        assert!(c.c1.is_none(), "1010 > 800 buffer");
        let c_fit = ctx.costs(&dep.space(), 10.0, 20.0);
        assert!(c_fit.c1.is_some());
        assert!(c_fit.hbsj_wins());
    }

    #[test]
    fn finish_produces_consistent_report() {
        let dep = deployment(800);
        let spec = JoinSpec::distance_join(0.5);
        let mut ctx = ExecCtx::new(&dep, &spec);
        ctx.hbsj_leaf(&dep.space()).unwrap();
        let rep = ctx.finish("test");
        assert_eq!(rep.pairs.len(), 100);
        assert_eq!(rep.algorithm, "test");
        assert!(rep.total_bytes() > 0);
        assert_eq!(
            rep.cost_units,
            rep.total_bytes() as f64,
            "unit tariffs: cost == bytes"
        );
        assert_eq!(rep.objects_downloaded(), 200);
        assert!(rep.iceberg.is_none());
    }

    #[test]
    fn iceberg_output() {
        let dep = deployment(800);
        let spec = JoinSpec::iceberg(12.0, 3);
        let mut ctx = ExecCtx::new(&dep, &spec);
        ctx.hbsj_leaf(&dep.space()).unwrap();
        let rep = ctx.finish("test");
        let ice = rep.iceberg.unwrap();
        // Interior lattice points have 5 partners (self + 4 neighbours at
        // distance 10 ≤ 12); corners have 3.
        assert!(!ice.qualifying.is_empty());
        assert!(ice.qualifying.iter().all(|&(_, c)| c >= 3));
    }

    #[test]
    fn hbsj_leaf_counted_fails_before_paying_for_s() {
        // Buffer 150: R (100 objects) fits, R+S (200) does not. With the
        // count hint the failure must cost zero S-side window traffic —
        // the doc's "fails without downloading the second side".
        let dep = deployment(150);
        let spec = JoinSpec::distance_join(0.5);
        let mut ctx = ExecCtx::new(&dep, &spec);
        let w = dep.space();
        assert!(ctx.hbsj_leaf_counted(&w, Some(100)).is_err());
        let s_meter = ctx.link(Side::S).meter().snapshot();
        assert_eq!(s_meter.window_queries, 0, "S window must not be paid for");
        assert_eq!(s_meter.objects_received, 0);
        assert_eq!(s_meter.total_bytes(), 0);
        let r_meter = ctx.link(Side::R).meter().snapshot();
        assert_eq!(r_meter.window_queries, 1);
        assert_eq!(r_meter.objects_received, 100);
        assert_eq!(ctx.buffer.in_use(), 0, "reservation released on failure");
        // The un-hinted form must still fail — after the fact.
        assert!(ctx.hbsj_leaf(&w).is_err());
        assert!(ctx.link(Side::S).meter().snapshot().window_queries > 0);
    }

    #[test]
    fn batched_quadrant_counts_match_per_query() {
        let pts = grid_points(10, 10.0, 0);
        let space = Rect::from_coords(0.0, 0.0, 90.0, 90.0);
        let build = |batched: bool| {
            crate::deploy::DeploymentBuilder::new(pts.clone(), pts.clone())
                .with_buffer(800)
                .with_space(space)
                .with_net(asj_net::NetConfig::default().with_batched_stats(batched))
                .build()
        };
        let spec = JoinSpec::distance_join(10.0);
        let dep_single = build(false);
        let dep_batched = build(true);
        let single = ExecCtx::new(&dep_single, &spec);
        let batched = ExecCtx::new(&dep_batched, &spec);
        let quads = space.quadrants();
        for side in [Side::R, Side::S] {
            assert_eq!(
                single.quadrant_counts(side, &quads),
                batched.quadrant_counts(side, &quads)
            );
        }
        // One MultiCount message vs four COUNTs, strictly fewer bytes.
        let sm = single.link(Side::R).meter().snapshot();
        let bm = batched.link(Side::R).meter().snapshot();
        assert_eq!(sm.count_queries, 4);
        assert_eq!(bm.count_queries, 1);
        assert!(bm.up_packets < sm.up_packets);
        assert!(bm.aggregate_bytes() < sm.aggregate_bytes());
        // And the cost model prices exactly what the meter measured.
        assert_eq!(sm.aggregate_bytes() as f64, single.cost.stats_round(4));
        assert_eq!(bm.aggregate_bytes() as f64, batched.cost.stats_round(4));
    }

    #[test]
    fn fleet_stats_meter_matches_fanout_priced_cost() {
        // Two clusters in opposite corners → each of the 2 shards holds
        // one. A full-space COUNT survives pruning on both shards, so the
        // meter must record exactly the fan-out-priced statistics round —
        // the cost model and the wire agree on what a fleet costs.
        let mut objs = grid_points(5, 2.0, 0);
        objs.extend(
            (0..25).map(|i| {
                SpatialObject::point(100 + i, 80.0 + (i % 5) as f64, 80.0 + (i / 5) as f64)
            }),
        );
        let dep = crate::deploy::DeploymentBuilder::new(objs.clone(), objs)
            .with_space(Rect::from_coords(0.0, 0.0, 90.0, 90.0))
            .with_shards(2, 2)
            .build();
        let spec = JoinSpec::distance_join(1.0);
        let ctx = ExecCtx::new(&dep, &spec);
        assert_eq!(ctx.cost.fanout_r, 2.0);
        assert_eq!(ctx.count(Side::R, &dep.space()), 50);
        let m = ctx.link(Side::R).meter().snapshot();
        assert_eq!(
            m.aggregate_bytes() as f64,
            ctx.cost.fanout_r * ctx.cost.stats_round(1),
            "meter and fan-out-priced model must agree on a full-scatter COUNT"
        );
        // A corner window reaches one shard only: the meter then shows
        // half the full-scatter price (this is why the factor is an upper
        // bound).
        let corner = Rect::from_coords(0.0, 0.0, 5.0, 5.0);
        let before = ctx.link(Side::R).meter().snapshot();
        assert_eq!(ctx.count(Side::R, &corner), 9);
        let delta = ctx.link(Side::R).meter().snapshot().since(&before);
        assert_eq!(delta.aggregate_bytes() as f64, ctx.cost.stats_round(1));
    }

    #[test]
    fn min_window_uses_max_space_dimension() {
        // Intersection join (extension 0) on a 10 × 4000 space: the floor
        // must come from the max dimension (4000·1e-7 = 4e-4), not the
        // width (10·1e-7 = 1e-6). A flat window of height 3e-4 sits
        // between the two formulas, so only the fixed one stops there.
        let pts = vec![SpatialObject::point(0, 1.0, 1.0)];
        let dep = crate::deploy::DeploymentBuilder::new(pts.clone(), pts)
            .with_space(Rect::from_coords(0.0, 0.0, 10.0, 4000.0))
            .build();
        let spec = JoinSpec::intersection_join();
        let ctx = ExecCtx::new(&dep, &spec);
        assert_eq!(ctx.min_window, 4000.0 * 1e-7);
        assert!(
            ctx.at_limit(&Rect::from_coords(0.0, 0.0, 5.0, 3e-4), 0),
            "height guard must fire at the max-dimension scale"
        );
        assert!(!ctx.at_limit(&Rect::from_coords(0.0, 0.0, 5.0, 1.0), 0));
    }

    #[test]
    fn non_square_space_recursion_terminates_and_is_exact() {
        // Elongated space (1 : 400): identical clustered datasets with a
        // tiny buffer force deep decomposition along the long axis; the
        // recursion must terminate and reproduce the oracle result.
        let pts: Vec<SpatialObject> = (0..200)
            .map(|i| SpatialObject::point(i, (i % 5) as f64 * 2.0, (i / 5) as f64 * 90.0))
            .collect();
        let space = Rect::from_coords(0.0, 0.0, 10.0, 4000.0);
        let dep = crate::deploy::DeploymentBuilder::new(pts.clone(), pts.clone())
            .with_buffer(60)
            .with_space(space)
            .build();
        let spec = JoinSpec::distance_join(3.0); // extension 1.5 → floor 6
        let mut ctx = ExecCtx::new(&dep, &spec);
        assert_eq!(ctx.min_window, 6.0);
        // Height guard now fires at the same scale as the width guard.
        assert!(ctx.at_limit(&Rect::from_coords(0.0, 0.0, 9.0, 5.0), 0));
        let (cr, cs) = ctx.counts(&space);
        ctx.hbsj(&space, cr, cs, 0);
        assert!(ctx.stats.splits > 0, "expected decomposition");
        assert!(ctx.buffer.peak() <= 60);
        let mut got = ctx.out.into_pairs();
        got.sort_unstable();
        let mut want = asj_geom::sweep::nested_loop_join(&pts, &pts, &spec.predicate);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn validated_counts_accepts_exact_length() {
        assert_eq!(validated_counts(3, vec![1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(validated_counts(0, vec![]), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "protocol mismatch: MultiCount(4) answered with 5 counts")]
    fn validated_counts_rejects_long_reply() {
        validated_counts(4, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "protocol mismatch: MultiCount(4) answered with 2 counts")]
    fn validated_counts_rejects_short_reply() {
        validated_counts(4, vec![1, 2]);
    }

    #[test]
    fn decision_cost_without_cache_is_the_base_model() {
        let dep = deployment(800);
        let spec = JoinSpec::distance_join(10.0);
        let ctx = ExecCtx::new(&dep, &spec);
        assert_eq!(ctx.decision_cost().stats_discount, 1.0);
        assert_eq!(
            ctx.decision_cost().split_stats_cost(),
            ctx.cost.split_stats_cost()
        );
    }

    #[test]
    fn decision_cost_discounts_follow_observed_hit_rate() {
        let dep = crate::deploy::DeploymentBuilder::new(
            grid_points(10, 10.0, 0),
            grid_points(10, 10.0, 0),
        )
        .with_buffer(800)
        .with_space(Rect::from_coords(0.0, 0.0, 90.0, 90.0))
        .with_client_cache(true)
        .build();
        let spec = JoinSpec::distance_join(10.0);
        let ctx = ExecCtx::new(&dep, &spec);
        // Cache present, nothing observed: Laplace smoothing keeps the
        // multipliers at exactly 1.
        assert_eq!(ctx.decision_cost().stats_discount, 1.0);
        let w = dep.space();
        ctx.count(Side::R, &w); // miss
        ctx.count(Side::R, &w); // hit
        ctx.count(Side::R, &w); // hit
                                // 2 hits, 1 miss → stats price multiplier (1+1)/(3+1) = 0.5.
        let cost = ctx.decision_cost();
        assert_eq!(cost.stats_discount, 0.5);
        assert_eq!(cost.window_discount, 1.0, "no window lookups yet");
        assert_eq!(cost.split_stats_cost(), 0.5 * ctx.cost.split_stats_cost());
        // The report carries the cache snapshots.
        let rep = ctx.finish("test");
        let cache = rep.cache_r.expect("cached link");
        assert_eq!((cache.stats_hits, cache.stats_misses), (2, 1));
        assert!(rep.cache_bytes_saved() > 0);
        assert!(rep.cache_hit_rate() > 0.0);
    }

    #[test]
    fn at_limit_guards() {
        let dep = deployment(800);
        let spec = JoinSpec::distance_join(10.0); // extension 5 → min_window 20
        let ctx = ExecCtx::new(&dep, &spec);
        assert!(ctx.at_limit(&Rect::from_coords(0.0, 0.0, 19.0, 19.0), 0));
        assert!(!ctx.at_limit(&Rect::from_coords(0.0, 0.0, 30.0, 30.0), 0));
        assert!(ctx.at_limit(&Rect::from_coords(0.0, 0.0, 30.0, 30.0), 24));
    }
}
