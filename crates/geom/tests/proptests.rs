//! Property tests for the geometry kernel: the invariants every other
//! crate silently relies on.

use asj_geom::grid::owns_reference_point;
use asj_geom::sweep::nested_loop_join;
use asj_geom::{
    pair_reference_point, plane_sweep_join, Grid, JoinPredicate, Point, Rect, SpatialObject,
};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (-1000i32..=1000).prop_map(|v| v as f64 * 0.5)
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), point()).prop_map(|(a, b)| Rect::new(a, b))
}

fn objects(max: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec(rect(), 0..max).prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, r)| SpatialObject::new(i as u32, r))
            .collect()
    })
}

proptest! {
    #[test]
    fn union_contains_operands(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        // Union is commutative.
        prop_assert_eq!(u, b.union(&a));
    }

    #[test]
    fn intersection_inside_both(a in rect(), b in rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn min_dist_symmetric_and_zero_iff_intersecting(a in rect(), b in rect()) {
        let d = a.min_dist(&b);
        prop_assert_eq!(d, b.min_dist(&a));
        prop_assert!(d >= 0.0);
        prop_assert_eq!(d == 0.0, a.intersects(&b));
    }

    #[test]
    fn within_distance_consistent_with_min_dist(a in rect(), b in rect(), eps in 0.0f64..100.0) {
        prop_assert_eq!(a.within_distance(&b, eps), a.min_dist(&b) <= eps);
    }

    #[test]
    fn expand_monotone(r in rect(), d in 0.0f64..50.0) {
        let e = r.expand(d);
        prop_assert!(e.contains_rect(&r));
        prop_assert!(e.width() >= r.width());
    }

    #[test]
    fn quadrants_tile_without_gaps(r in rect(), p in point()) {
        prop_assume!(r.width() > 0.0 && r.height() > 0.0);
        let quads = r.quadrants();
        let area: f64 = quads.iter().map(|q| q.area()).sum();
        prop_assert!((area - r.area()).abs() <= 1e-9 * r.area().max(1.0));
        // Any point of the closed rect is owned by exactly one quadrant
        // under the reference-point discipline.
        if r.contains(&p) {
            let owners = quads
                .iter()
                .filter(|q| owns_reference_point(q, &r, &p))
                .count();
            prop_assert_eq!(owners, 1);
        }
    }

    #[test]
    fn grid_cell_ownership_unique(p in point(), k in 1u32..6) {
        let space = Rect::from_coords(-500.0, -500.0, 500.0, 500.0);
        let g = Grid::square(space, k);
        if space.contains(&p) {
            let owners = (0..k)
                .flat_map(|j| (0..k).map(move |i| (i, j)))
                .filter(|&(i, j)| g.cell_owns(i, j, &p))
                .count();
            prop_assert_eq!(owners, 1);
        } else {
            prop_assert!(g.cell_of(&p).is_none());
        }
    }

    #[test]
    fn plane_sweep_equals_nested_loop(
        r in objects(30),
        s in objects(30),
        eps in prop_oneof![Just(0.0), 0.1f64..200.0],
    ) {
        let pred = if eps == 0.0 {
            JoinPredicate::Intersects
        } else {
            JoinPredicate::WithinDistance(eps)
        };
        let mut got = plane_sweep_join(&r, &s, &pred);
        let mut want = nested_loop_join(&r, &s, &pred);
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reference_point_exists_iff_pair_qualifies(
        a in rect(),
        b in rect(),
        eps in 0.0f64..100.0,
    ) {
        let oa = SpatialObject::new(1, a);
        let ob = SpatialObject::new(2, b);
        let pred = JoinPredicate::WithinDistance(eps);
        let rp = pair_reference_point(&oa, &ob, &pred);
        prop_assert_eq!(rp.is_some(), pred.matches(&a, &b));
        if let Some(p) = rp {
            // The midpoint is within eps/2 of both centers.
            prop_assert!(p.distance(&a.center()) <= a.center().distance(&b.center()) / 2.0 + 1e-9);
        }
    }

    #[test]
    fn intersection_reference_point_covered_by_both(a in rect(), b in rect()) {
        let oa = SpatialObject::new(1, a);
        let ob = SpatialObject::new(2, b);
        if let Some(p) = pair_reference_point(&oa, &ob, &JoinPredicate::Intersects) {
            prop_assert!(a.contains(&p));
            prop_assert!(b.contains(&p));
        }
    }
}
