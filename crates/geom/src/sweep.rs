//! In-memory plane-sweep spatial join.
//!
//! The kernel of HBSJ on the device and of the final join step of the
//! SemiJoin baseline on the server. Classic forward plane sweep over the x
//! axis (Brinkhoff et al. [2], adapted to ε-distance): both inputs are
//! sorted by `mbr.min.x`; for each object the other list is scanned forward
//! while `min.x ≤ current.max.x + ε`, and surviving candidates are tested on
//! the full predicate.
//!
//! Complexity `O(n log n + k)` for k tested candidate pairs — in contrast to
//! the `O(n·m)` nested loop, which the benches in `asj-bench` quantify.

use crate::{JoinPredicate, ObjectId, SpatialObject};

/// Computes all pairs `(r.id, s.id)` with `pred(r, s)` via plane sweep.
///
/// Allocates two sorted index vectors; inputs are borrowed unsorted.
pub fn plane_sweep_join(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    plane_sweep_pairs(r, s, pred, |a, b| out.push((a.id, b.id)));
    out
}

/// Plane-sweep join driving a callback for every qualifying pair `(r, s)`.
///
/// The callback form lets callers apply duplicate-avoidance filters or
/// iceberg counters without materializing the pair list.
pub fn plane_sweep_pairs<F: FnMut(&SpatialObject, &SpatialObject)>(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    mut emit: F,
) {
    if r.is_empty() || s.is_empty() {
        return;
    }
    let eps = pred.epsilon();
    // Sort indices, not objects: objects are 24 bytes and the borrow stays
    // intact for the caller.
    let mut ri: Vec<u32> = (0..r.len() as u32).collect();
    let mut si: Vec<u32> = (0..s.len() as u32).collect();
    ri.sort_unstable_by(|&a, &b| r[a as usize].mbr.min.x.total_cmp(&r[b as usize].mbr.min.x));
    si.sort_unstable_by(|&a, &b| s[a as usize].mbr.min.x.total_cmp(&s[b as usize].mbr.min.x));

    let mut i = 0usize; // cursor into ri
    let mut j = 0usize; // cursor into si
    while i < ri.len() && j < si.len() {
        let ro = &r[ri[i] as usize];
        let so = &s[si[j] as usize];
        if ro.mbr.min.x <= so.mbr.min.x {
            // ro is the sweep head: scan S forward while it can still be
            // within eps on the x axis.
            let limit = ro.mbr.max.x + eps;
            for &sj in &si[j..] {
                let cand = &s[sj as usize];
                if cand.mbr.min.x > limit {
                    break;
                }
                if pred.matches(&ro.mbr, &cand.mbr) {
                    emit(ro, cand);
                }
            }
            i += 1;
        } else {
            let limit = so.mbr.max.x + eps;
            for &rj in &ri[i..] {
                let cand = &r[rj as usize];
                if cand.mbr.min.x > limit {
                    break;
                }
                if pred.matches(&cand.mbr, &so.mbr) {
                    emit(cand, so);
                }
            }
            j += 1;
        }
    }
}

/// Reference `O(n·m)` nested-loop join; used by tests and as the ground
/// truth the property tests compare against.
pub fn nested_loop_join(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    for a in r {
        for b in s {
            if pred.matches_objects(a, b) {
                out.push((a.id, b.id));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn pt(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let pred = JoinPredicate::WithinDistance(1.0);
        assert!(plane_sweep_join(&[], &[pt(1, 0.0, 0.0)], &pred).is_empty());
        assert!(plane_sweep_join(&[pt(1, 0.0, 0.0)], &[], &pred).is_empty());
    }

    #[test]
    fn distance_join_small() {
        let r = vec![pt(1, 0.0, 0.0), pt(2, 10.0, 10.0)];
        let s = vec![pt(1, 0.5, 0.0), pt(2, 10.0, 10.4), pt(3, 50.0, 50.0)];
        let pred = JoinPredicate::WithinDistance(1.0);
        let got = sorted(plane_sweep_join(&r, &s, &pred));
        assert_eq!(got, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn intersection_join_mbrs() {
        let r = vec![
            SpatialObject::new(1, Rect::from_coords(0.0, 0.0, 2.0, 2.0)),
            SpatialObject::new(2, Rect::from_coords(5.0, 5.0, 6.0, 6.0)),
        ];
        let s = vec![
            SpatialObject::new(9, Rect::from_coords(1.0, 1.0, 3.0, 3.0)),
            SpatialObject::new(8, Rect::from_coords(5.5, 0.0, 7.0, 5.5)),
        ];
        let got = sorted(plane_sweep_join(&r, &s, &JoinPredicate::Intersects));
        assert_eq!(got, vec![(1, 9), (2, 8)]);
    }

    #[test]
    fn matches_nested_loop_on_grid_cluster() {
        // Deterministic pseudo-random-ish layout exercising many overlaps.
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..40u32 {
            let f = i as f64;
            r.push(pt(i, (f * 7.3) % 13.0, (f * 3.1) % 11.0));
            s.push(pt(i, (f * 5.7) % 13.0, (f * 2.9) % 11.0));
        }
        for eps in [0.0, 0.5, 2.0, 20.0] {
            let pred = JoinPredicate::WithinDistance(eps);
            assert_eq!(
                sorted(plane_sweep_join(&r, &s, &pred)),
                sorted(nested_loop_join(&r, &s, &pred)),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn duplicate_coordinates_handled() {
        let r = vec![pt(1, 1.0, 1.0), pt(2, 1.0, 1.0)];
        let s = vec![pt(7, 1.0, 1.0)];
        let pred = JoinPredicate::WithinDistance(0.0);
        assert_eq!(
            sorted(plane_sweep_join(&r, &s, &pred)),
            vec![(1, 7), (2, 7)]
        );
    }

    #[test]
    fn callback_sees_objects_not_just_ids() {
        let r = vec![pt(3, 0.0, 0.0)];
        let s = vec![pt(4, 0.1, 0.0)];
        let mut hits = 0;
        plane_sweep_pairs(&r, &s, &JoinPredicate::WithinDistance(1.0), |a, b| {
            assert_eq!((a.id, b.id), (3, 4));
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
