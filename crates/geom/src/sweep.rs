//! In-memory plane-sweep spatial join.
//!
//! The kernel of HBSJ on the device and of the final join step of the
//! SemiJoin baseline on the server. Classic forward plane sweep over the x
//! axis (Brinkhoff et al. [2], adapted to ε-distance): both inputs are
//! sorted by `mbr.min.x`; for each object the other list is scanned forward
//! while `min.x ≤ current.max.x + ε`, and surviving candidates are tested on
//! the full predicate.
//!
//! Two implementation notes:
//!
//! * The sort operates on **packed `(f64 key, u32 idx)` pairs**, not bare
//!   indices with an indirect comparator — both the sort and the forward
//!   candidate scan read keys sequentially from a dense array instead of
//!   chasing into the 40-byte object array, and ties break on the original
//!   index so the order is a total order (deterministic even with
//!   duplicated coordinates).
//! * The sweep is expressed as a walk over the *merged head sequence* (both
//!   sorted inputs merged by key, R before S on ties — exactly the order
//!   the classic two-cursor loop processes heads in). That formulation
//!   makes the kernel trivially partitionable: [`plane_sweep_join_parallel`]
//!   splits the head sequence into contiguous x-spans, processes each on a
//!   scoped thread (each worker reads past its span's right edge for
//!   ε-overlap candidates — the seam), and concatenates the per-span
//!   outputs in span order. The merged output is **identical — same pairs,
//!   same order — to the serial kernel at every worker count**, which the
//!   unit and property tests pin.
//!
//! Complexity `O(n log n + k)` for k tested candidate pairs — in contrast to
//! the `O(n·m)` nested loop, which the benches in `asj-bench` quantify.

use crate::{JoinPredicate, ObjectId, SpatialObject};

/// Computes all pairs `(r.id, s.id)` with `pred(r, s)` via plane sweep.
///
/// Allocates two sorted key vectors; inputs are borrowed unsorted.
pub fn plane_sweep_join(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    plane_sweep_pairs(r, s, pred, |a, b| out.push((a.id, b.id)));
    out
}

/// Plane-sweep join driving a callback for every qualifying pair `(r, s)`.
///
/// The callback form lets callers apply duplicate-avoidance filters or
/// iceberg counters without materializing the pair list.
pub fn plane_sweep_pairs<F: FnMut(&SpatialObject, &SpatialObject)>(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    mut emit: F,
) {
    if r.is_empty() || s.is_empty() {
        return;
    }
    let rk = packed_keys(r);
    let sk = packed_keys(s);
    let heads = rk.len() + sk.len();
    sweep_span(
        Lane { objs: r, keys: &rk },
        Lane { objs: s, keys: &sk },
        pred,
        Cursor { i: 0, j: 0, heads },
        &mut emit,
    );
}

/// Parallel plane sweep: identical output (same pairs, same order) to
/// [`plane_sweep_join`] at every `workers` count, computed on `workers`
/// scoped threads. `workers ≤ 1` runs the serial kernel.
pub fn plane_sweep_join_parallel(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    workers: usize,
) -> Vec<(ObjectId, ObjectId)> {
    plane_sweep_filtered_parallel(r, s, pred, workers, |_, _| true)
}

/// Parallel plane sweep keeping only pairs accepted by `keep` — the hook
/// the device kernels use for reference-point duplicate avoidance. The
/// filter must be pure: it runs on worker threads and its verdict must not
/// depend on call order, or the serial/parallel identity breaks.
///
/// Output is identical (same pairs, same order) to running
/// [`plane_sweep_pairs`] with the same filter, at every worker count.
pub fn plane_sweep_filtered_parallel<F>(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    workers: usize,
    keep: F,
) -> Vec<(ObjectId, ObjectId)>
where
    F: Fn(&SpatialObject, &SpatialObject) -> bool + Sync,
{
    if r.is_empty() || s.is_empty() {
        return Vec::new();
    }
    let heads = r.len() + s.len();
    let workers = workers.clamp(1, heads);
    if workers == 1 {
        let mut out = Vec::new();
        plane_sweep_pairs(r, s, pred, |a, b| {
            if keep(a, b) {
                out.push((a.id, b.id));
            }
        });
        return out;
    }
    let rk = packed_keys(r);
    let sk = packed_keys(s);
    // Span boundaries of the merged head sequence, with the (i, j) cursor
    // state at each boundary recorded during one O(n + m) merge pass so
    // every worker starts exactly where the serial sweep would stand.
    let per_span = heads.div_ceil(workers);
    let mut spans: Vec<(usize, usize, usize)> = Vec::with_capacity(workers); // (i, j, head_count)
    {
        let (mut i, mut j) = (0usize, 0usize);
        for t in 0..heads {
            if t % per_span == 0 {
                spans.push((i, j, per_span.min(heads - t)));
            }
            if i < rk.len() && (j >= sk.len() || rk[i].0 <= sk[j].0) {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    let keep = &keep;
    let (rk, sk) = (&rk, &sk);
    let parts: Vec<Vec<(ObjectId, ObjectId)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(i, j, heads)| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    sweep_span(
                        Lane { objs: r, keys: rk },
                        Lane { objs: s, keys: sk },
                        pred,
                        Cursor { i, j, heads },
                        &mut |a, b| {
                            if keep(a, b) {
                                out.push((a.id, b.id));
                            }
                        },
                    );
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked");
    parts.concat()
}

/// Packed sort keys `(min.x, original index)`, ordered by key then index —
/// a total order, so duplicated coordinates cannot make the emission order
/// depend on sort internals.
fn packed_keys(objs: &[SpatialObject]) -> Vec<(f64, u32)> {
    let mut keys: Vec<(f64, u32)> = objs
        .iter()
        .enumerate()
        .map(|(i, o)| (o.mbr.min.x, i as u32))
        .collect();
    keys.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keys
}

/// One sweep input: the objects and their packed sort keys.
#[derive(Clone, Copy)]
struct Lane<'a> {
    objs: &'a [SpatialObject],
    keys: &'a [(f64, u32)],
}

/// A position in the merged head sequence: `i` / `j` heads of each lane
/// already consumed, `heads` left to process.
#[derive(Clone, Copy)]
struct Cursor {
    i: usize,
    j: usize,
    heads: usize,
}

/// Processes `cur.heads` consecutive heads of the merged sweep sequence,
/// starting from cursor state `(cur.i, cur.j)`. Heads merge by key with R
/// first on ties, matching the classic loop's `ro.min.x <= so.min.x`
/// branch; a head past the other side's end scans an empty candidate
/// slice, so a full walk (`i = j = 0`, `heads = n + m`) is exactly the
/// serial kernel.
fn sweep_span<F: FnMut(&SpatialObject, &SpatialObject)>(
    r: Lane<'_>,
    s: Lane<'_>,
    pred: &JoinPredicate,
    cur: Cursor,
    emit: &mut F,
) {
    let eps = pred.epsilon();
    let (r, rk) = (r.objs, r.keys);
    let (s, sk) = (s.objs, s.keys);
    let Cursor {
        mut i,
        mut j,
        heads,
    } = cur;
    for _ in 0..heads {
        if i < rk.len() && (j >= sk.len() || rk[i].0 <= sk[j].0) {
            // An R head: scan S forward while it can still be within eps
            // on the x axis.
            let ro = &r[rk[i].1 as usize];
            let limit = ro.mbr.max.x + eps;
            for &(key, sj) in &sk[j..] {
                if key > limit {
                    break;
                }
                let cand = &s[sj as usize];
                if pred.matches(&ro.mbr, &cand.mbr) {
                    emit(ro, cand);
                }
            }
            i += 1;
        } else {
            let so = &s[sk[j].1 as usize];
            let limit = so.mbr.max.x + eps;
            for &(key, rj) in &rk[i..] {
                if key > limit {
                    break;
                }
                let cand = &r[rj as usize];
                if pred.matches(&cand.mbr, &so.mbr) {
                    emit(cand, so);
                }
            }
            j += 1;
        }
    }
}

/// Reference `O(n·m)` nested-loop join; used by tests and as the ground
/// truth the property tests compare against.
pub fn nested_loop_join(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    for a in r {
        for b in s {
            if pred.matches_objects(a, b) {
                out.push((a.id, b.id));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn pt(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let pred = JoinPredicate::WithinDistance(1.0);
        assert!(plane_sweep_join(&[], &[pt(1, 0.0, 0.0)], &pred).is_empty());
        assert!(plane_sweep_join(&[pt(1, 0.0, 0.0)], &[], &pred).is_empty());
        assert!(plane_sweep_join_parallel(&[], &[pt(1, 0.0, 0.0)], &pred, 4).is_empty());
    }

    #[test]
    fn distance_join_small() {
        let r = vec![pt(1, 0.0, 0.0), pt(2, 10.0, 10.0)];
        let s = vec![pt(1, 0.5, 0.0), pt(2, 10.0, 10.4), pt(3, 50.0, 50.0)];
        let pred = JoinPredicate::WithinDistance(1.0);
        let got = sorted(plane_sweep_join(&r, &s, &pred));
        assert_eq!(got, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn intersection_join_mbrs() {
        let r = vec![
            SpatialObject::new(1, Rect::from_coords(0.0, 0.0, 2.0, 2.0)),
            SpatialObject::new(2, Rect::from_coords(5.0, 5.0, 6.0, 6.0)),
        ];
        let s = vec![
            SpatialObject::new(9, Rect::from_coords(1.0, 1.0, 3.0, 3.0)),
            SpatialObject::new(8, Rect::from_coords(5.5, 0.0, 7.0, 5.5)),
        ];
        let got = sorted(plane_sweep_join(&r, &s, &JoinPredicate::Intersects));
        assert_eq!(got, vec![(1, 9), (2, 8)]);
    }

    #[test]
    fn matches_nested_loop_on_grid_cluster() {
        // Deterministic pseudo-random-ish layout exercising many overlaps.
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..40u32 {
            let f = i as f64;
            r.push(pt(i, (f * 7.3) % 13.0, (f * 3.1) % 11.0));
            s.push(pt(i, (f * 5.7) % 13.0, (f * 2.9) % 11.0));
        }
        for eps in [0.0, 0.5, 2.0, 20.0] {
            let pred = JoinPredicate::WithinDistance(eps);
            assert_eq!(
                sorted(plane_sweep_join(&r, &s, &pred)),
                sorted(nested_loop_join(&r, &s, &pred)),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn parallel_output_identical_to_serial_every_worker_count() {
        // Includes duplicated x coordinates so the seam and tie handling
        // are both exercised; equality is on the full vector — same pairs
        // in the same order, not just the same set.
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..150u32 {
            let f = i as f64;
            r.push(pt(i, (f * 7.3) % 13.0, (f * 3.1) % 11.0));
            s.push(pt(1000 + i, (f * 5.7) % 13.0, (f * 2.9) % 11.0));
            if i % 10 == 0 {
                s.push(pt(2000 + i, (f * 7.3) % 13.0, (f * 2.9) % 11.0)); // shared min.x
            }
        }
        for eps in [0.0, 0.5, 2.0, 20.0] {
            let pred = JoinPredicate::WithinDistance(eps);
            let serial = plane_sweep_join(&r, &s, &pred);
            for workers in [1, 2, 3, 4, 7, 16, 1000] {
                assert_eq!(
                    plane_sweep_join_parallel(&r, &s, &pred, workers),
                    serial,
                    "eps={eps} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_filter_applies_identically() {
        let r: Vec<_> = (0..80)
            .map(|i| pt(i, (i as f64 * 3.7) % 10.0, 0.0))
            .collect();
        let s: Vec<_> = (0..80)
            .map(|i| pt(i, (i as f64 * 2.3) % 10.0, 0.5))
            .collect();
        let pred = JoinPredicate::WithinDistance(1.5);
        let keep = |a: &SpatialObject, b: &SpatialObject| (a.id + b.id) % 3 == 0;
        let mut serial = Vec::new();
        plane_sweep_pairs(&r, &s, &pred, |a, b| {
            if keep(a, b) {
                serial.push((a.id, b.id));
            }
        });
        assert!(!serial.is_empty());
        for workers in [2, 5] {
            assert_eq!(
                plane_sweep_filtered_parallel(&r, &s, &pred, workers, keep),
                serial
            );
        }
    }

    #[test]
    fn duplicate_coordinates_handled() {
        let r = vec![pt(1, 1.0, 1.0), pt(2, 1.0, 1.0)];
        let s = vec![pt(7, 1.0, 1.0)];
        let pred = JoinPredicate::WithinDistance(0.0);
        assert_eq!(
            sorted(plane_sweep_join(&r, &s, &pred)),
            vec![(1, 7), (2, 7)]
        );
    }

    #[test]
    fn duplicate_keys_emit_in_input_order() {
        // The packed keys break ties on the original index, so objects
        // sharing min.x sweep in input order — pinned here so the order
        // is a contract, not an accident of the sort.
        let r = vec![pt(5, 2.0, 0.0), pt(3, 2.0, 1.0), pt(9, 2.0, 2.0)];
        let s = vec![pt(1, 2.0, 0.0)];
        let pred = JoinPredicate::WithinDistance(5.0);
        assert_eq!(
            plane_sweep_join(&r, &s, &pred),
            vec![(5, 1), (3, 1), (9, 1)]
        );
    }

    #[test]
    fn callback_sees_objects_not_just_ids() {
        let r = vec![pt(3, 0.0, 0.0)];
        let s = vec![pt(4, 0.1, 0.0)];
        let mut hits = 0;
        plane_sweep_pairs(&r, &s, &JoinPredicate::WithinDistance(1.0), |a, b| {
            assert_eq!((a.id, b.id), (3, 4));
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
