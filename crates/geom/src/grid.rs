//! Regular grids over a window — the partitioning backbone.

use crate::{Point, Rect};

/// A regular `kx × ky` grid imposed on a rectangular window.
///
/// Cell `(i, j)` covers
/// `[min.x + i·cw, min.x + (i+1)·cw) × [min.y + j·ch, min.y + (j+1)·ch)`
/// with half-open semantics, except that cells on the far edge of the
/// window are closed so that the grid exactly tiles the (closed) window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    window: Rect,
    kx: u32,
    ky: u32,
}

impl Grid {
    /// Creates a grid; `kx`, `ky` must be ≥ 1.
    pub fn new(window: Rect, kx: u32, ky: u32) -> Self {
        assert!(kx >= 1 && ky >= 1, "grid must have at least one cell");
        Grid { window, kx, ky }
    }

    /// Square `k × k` grid, the shape used by the algorithms (k = 2).
    pub fn square(window: Rect, k: u32) -> Self {
        Grid::new(window, k, k)
    }

    /// The gridded window.
    #[inline]
    pub fn window(&self) -> Rect {
        self.window
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        (self.kx as usize) * (self.ky as usize)
    }

    /// `true` when the grid has no cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cell width.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.window.width() / self.kx as f64
    }

    /// Cell height.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.window.height() / self.ky as f64
    }

    /// The rectangle of cell `(i, j)`; panics when out of range.
    pub fn cell(&self, i: u32, j: u32) -> Rect {
        assert!(i < self.kx && j < self.ky, "cell index out of range");
        let cw = self.cell_width();
        let ch = self.cell_height();
        Rect::from_coords(
            self.window.min.x + i as f64 * cw,
            self.window.min.y + j as f64 * ch,
            // Compute far edges from the window to avoid FP drift: the last
            // cell must end exactly at the window boundary.
            if i + 1 == self.kx {
                self.window.max.x
            } else {
                self.window.min.x + (i + 1) as f64 * cw
            },
            if j + 1 == self.ky {
                self.window.max.y
            } else {
                self.window.min.y + (j + 1) as f64 * ch
            },
        )
    }

    /// Iterator over all cells in row-major order (j outer, i inner).
    pub fn cells(&self) -> impl Iterator<Item = Rect> + '_ {
        (0..self.ky).flat_map(move |j| (0..self.kx).map(move |i| self.cell(i, j)))
    }

    /// The cell indices owning point `p` under the half-open discipline
    /// (far-edge closed), or `None` when `p` is outside the window.
    pub fn cell_of(&self, p: &Point) -> Option<(u32, u32)> {
        if !self.window.contains(p) {
            return None;
        }
        let fx = (p.x - self.window.min.x) / self.cell_width();
        let fy = (p.y - self.window.min.y) / self.cell_height();
        let i = (fx as u32).min(self.kx - 1);
        let j = (fy as u32).min(self.ky - 1);
        Some((i, j))
    }

    /// `true` when cell `(i, j)` owns `p`: half-open membership, far edge
    /// closed. Every point of the (closed) window is owned by exactly one
    /// cell.
    pub fn cell_owns(&self, i: u32, j: u32, p: &Point) -> bool {
        self.cell_of(p) == Some((i, j))
    }

    /// The inclusive cell index ranges `(i0..=i1, j0..=j1)` whose (closed)
    /// cells can intersect `r`, or `None` when `r` lies strictly outside
    /// the window. A superset under FP drift: every returned index range
    /// is padded by one cell on each side, so callers re-checking
    /// `cell(i, j).intersects(r)` see exactly the cells a full scan would
    /// — in O(covered cells) instead of O(kx·ky).
    pub fn covering(
        &self,
        r: &Rect,
    ) -> Option<(std::ops::RangeInclusive<u32>, std::ops::RangeInclusive<u32>)> {
        if r.max.x < self.window.min.x
            || r.min.x > self.window.max.x
            || r.max.y < self.window.min.y
            || r.min.y > self.window.max.y
        {
            return None;
        }
        // Clamp in the f64 domain: a rect reaching (say) 1e308 past the
        // window would overflow the ±1 padding after an i64 cast, and an
        // `as` cast of an out-of-range float saturates differently in
        // debug and release. `clamp` also maps the inf/NaN of degenerate
        // divisions onto valid indices.
        let span = |lo: f64, hi: f64, wmin: f64, cell: f64, k: u32| {
            let last = (k - 1) as f64;
            let a = (((lo - wmin) / cell).floor() - 1.0).clamp(0.0, last) as u32;
            let b = (((hi - wmin) / cell).floor() + 1.0).clamp(0.0, last) as u32;
            a..=b
        };
        Some((
            span(
                r.min.x,
                r.max.x,
                self.window.min.x,
                self.cell_width(),
                self.kx,
            ),
            span(
                r.min.y,
                r.max.y,
                self.window.min.y,
                self.cell_height(),
                self.ky,
            ),
        ))
    }
}

/// Ownership test used during recursive 2×2 partitioning, where sub-windows
/// come from [`Rect::quadrants`] rather than a persistent [`Grid`]:
/// half-open membership in `cell`, except closed on the sides where `cell`
/// touches the far edges of `space` (the global data space). Guarantees each
/// reference point is owned by exactly one cell of any partition of `space`.
pub fn owns_reference_point(cell: &Rect, space: &Rect, p: &Point) -> bool {
    if p.x < cell.min.x || p.y < cell.min.y {
        return false;
    }
    let x_ok = p.x < cell.max.x || (cell.max.x >= space.max.x && p.x <= cell.max.x);
    let y_ok = p.y < cell.max.y || (cell.max.y >= space.max.y && p.y <= cell.max.y);
    x_ok && y_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_coords(a, b, c, d)
    }

    #[test]
    fn cells_tile_window() {
        let g = Grid::square(r(0.0, 0.0, 10.0, 10.0), 4);
        assert_eq!(g.len(), 16);
        let total: f64 = g.cells().map(|c| c.area()).sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Last cell ends exactly at the window edge.
        assert_eq!(g.cell(3, 3).max, Point::new(10.0, 10.0));
    }

    #[test]
    fn rectangular_grid() {
        let g = Grid::new(r(0.0, 0.0, 10.0, 4.0), 5, 2);
        assert_eq!(g.cell_width(), 2.0);
        assert_eq!(g.cell_height(), 2.0);
        assert_eq!(g.cell(0, 1), r(0.0, 2.0, 2.0, 4.0));
    }

    #[test]
    fn cell_of_interior_and_boundary() {
        let g = Grid::square(r(0.0, 0.0, 4.0, 4.0), 2);
        assert_eq!(g.cell_of(&Point::new(1.0, 1.0)), Some((0, 0)));
        // Shared boundary goes to the upper cell (half-open).
        assert_eq!(g.cell_of(&Point::new(2.0, 2.0)), Some((1, 1)));
        // Far edge is closed and owned by the last cell.
        assert_eq!(g.cell_of(&Point::new(4.0, 4.0)), Some((1, 1)));
        assert_eq!(g.cell_of(&Point::new(4.1, 0.0)), None);
    }

    #[test]
    fn every_point_owned_by_exactly_one_cell() {
        let g = Grid::square(r(0.0, 0.0, 9.0, 9.0), 3);
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(3.0, 3.0),
            Point::new(9.0, 9.0),
            Point::new(4.5, 8.9999),
            Point::new(9.0, 0.0),
        ] {
            let owners = (0..3)
                .flat_map(|j| (0..3).map(move |i| (i, j)))
                .filter(|&(i, j)| g.cell_owns(i, j, &p))
                .count();
            assert_eq!(owners, 1, "point {p:?} owned by {owners} cells");
        }
    }

    #[test]
    fn owns_reference_point_partitions_space() {
        let space = r(0.0, 0.0, 8.0, 8.0);
        let quads = space.quadrants();
        for &p in &[
            Point::new(4.0, 4.0),
            Point::new(0.0, 0.0),
            Point::new(8.0, 8.0),
            Point::new(4.0, 0.0),
            Point::new(8.0, 3.0),
            Point::new(2.0, 8.0),
        ] {
            let owners = quads
                .iter()
                .filter(|q| owns_reference_point(q, &space, &p))
                .count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn owns_reference_point_nested_quadrants() {
        // Recursive split: the property must hold at deeper levels too.
        let space = r(0.0, 0.0, 8.0, 8.0);
        let q = space.quadrants()[3]; // NE = [4,8]x[4,8]
        let subs = q.quadrants();
        for &p in &[
            Point::new(6.0, 6.0),
            Point::new(8.0, 8.0),
            Point::new(8.0, 5.0),
            Point::new(4.0, 4.0),
            Point::new(6.0, 8.0),
        ] {
            let owners = subs
                .iter()
                .filter(|s| owns_reference_point(s, &space, &p))
                .count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_out_of_range_panics() {
        Grid::square(r(0.0, 0.0, 1.0, 1.0), 2).cell(2, 0);
    }

    #[test]
    fn covering_is_a_superset_of_intersecting_cells() {
        let g = Grid::new(r(0.0, 0.0, 10.0, 7.0), 10, 7);
        let probes = [
            r(0.0, 0.0, 10.0, 7.0),  // whole window
            r(2.5, 1.5, 3.5, 2.5),   // interior
            r(3.0, 2.0, 4.0, 3.0),   // boundary-aligned
            r(-5.0, -5.0, 0.0, 0.0), // touches the corner
            r(9.5, 6.5, 20.0, 20.0), // reaches past the far edge
            r(4.0, 4.0, 4.0, 4.0),   // degenerate point
        ];
        for probe in probes {
            let (is, js) = g.covering(&probe).expect("intersects the window");
            for j in 0..7u32 {
                for i in 0..10u32 {
                    if g.cell(i, j).intersects(&probe) {
                        assert!(
                            is.contains(&i) && js.contains(&j),
                            "cell ({i},{j}) intersects {probe:?} but not covered"
                        );
                    }
                }
            }
        }
        assert!(g.covering(&r(11.0, 0.0, 12.0, 1.0)).is_none());
        assert!(g.covering(&r(0.0, -3.0, 1.0, -0.1)).is_none());
    }

    #[test]
    fn covering_survives_extreme_rects() {
        // Rects reaching astronomically past the window must not overflow
        // the index arithmetic (debug panic / release wraparound) and must
        // still return the full covered range.
        let g = Grid::new(r(0.0, 0.0, 1.0, 1.0), 4, 4);
        for probe in [
            r(0.0, 0.0, 1e308, 0.5),
            r(-1e308, 0.0, 1e308, 1e308),
            r(f64::MIN, f64::MIN, f64::MAX, f64::MAX),
        ] {
            let (is, js) = g.covering(&probe).expect("intersects the window");
            for j in 0..4u32 {
                for i in 0..4u32 {
                    if g.cell(i, j).intersects(&probe) {
                        assert!(
                            is.contains(&i) && js.contains(&j),
                            "cell ({i},{j}) intersects {probe:?} but not covered"
                        );
                    }
                }
            }
        }
    }
}
