//! # asj-geom — geometry kernel
//!
//! Substrate for the IPDPS 2006 *Ad-hoc Distributed Spatial Joins on Mobile
//! Devices* reproduction. Provides the 2-D primitives every other crate
//! builds on:
//!
//! * [`Point`] and [`Rect`] (axis-aligned rectangles / MBRs) with the
//!   intersection, containment and minimum-distance predicates spatial join
//!   processing needs;
//! * [`SpatialObject`] — an identified MBR, the unit of transfer between the
//!   servers and the device (points are degenerate MBRs);
//! * [`Grid`] — the regular `k × k` decomposition used by the partitioning
//!   algorithms, including the 2×2 quadrant split and ε/2 window extension
//!   of the paper;
//! * [`JoinPredicate`] — MBR intersection or ε-distance;
//! * duplicate avoidance via *reference points* ([`dedup`]), so that a pair
//!   found in overlapping extended windows is reported exactly once;
//! * an in-memory [`sweep`] (plane-sweep) join, the kernel of HBSJ.
//!
//! Everything here is pure computational geometry: no I/O, no randomness.

pub mod dedup;
pub mod grid;
pub mod object;
pub mod point;
pub mod predicate;
pub mod rect;
pub mod sweep;

pub use dedup::{pair_reference_point, reference_point_in};
pub use grid::Grid;
pub use object::{ObjectId, SpatialObject};
pub use point::Point;
pub use predicate::JoinPredicate;
pub use rect::Rect;
pub use sweep::{
    plane_sweep_filtered_parallel, plane_sweep_join, plane_sweep_join_parallel, plane_sweep_pairs,
};
