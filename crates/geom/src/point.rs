//! 2-D points.

/// A point in the plane.
///
/// Coordinates are `f64`; the workloads in this repository live in a
/// `10 000 × 10 000` unit space, mirroring a city-scale map in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — avoids the `sqrt` in hot comparisons.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment between `self` and `other`.
    ///
    /// Used as the *reference point* for duplicate avoidance in distance
    /// joins: the midpoint is within ε/2 of both endpoints whenever the pair
    /// qualifies, so the cell containing it sees both objects.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.0, -7.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        let m = a.midpoint(&b);
        assert_eq!(m, Point::new(1.0, 3.0));
        assert_eq!(a.distance(&m), b.distance(&m));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
