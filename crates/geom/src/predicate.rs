//! Join predicates.

use crate::{Rect, SpatialObject};

/// The spatial predicate θ of the join `R ⋈_θ S`.
///
/// The paper evaluates MBR **intersection** joins and **ε-distance** joins
/// (qualifying pairs within distance ε). The iceberg distance semi-join is a
/// post-aggregation on top of a distance join and therefore reuses
/// [`JoinPredicate::WithinDistance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinPredicate {
    /// MBRs intersect (ε = 0 special case).
    Intersects,
    /// MBRs within Euclidean distance ε.
    WithinDistance(f64),
}

impl JoinPredicate {
    /// Evaluates the predicate on two MBRs.
    #[inline]
    pub fn matches(&self, a: &Rect, b: &Rect) -> bool {
        match *self {
            JoinPredicate::Intersects => a.intersects(b),
            JoinPredicate::WithinDistance(eps) => a.within_distance(b, eps),
        }
    }

    /// Evaluates the predicate on two objects.
    #[inline]
    pub fn matches_objects(&self, a: &SpatialObject, b: &SpatialObject) -> bool {
        self.matches(&a.mbr, &b.mbr)
    }

    /// The ε of the predicate (zero for intersection).
    #[inline]
    pub fn epsilon(&self) -> f64 {
        match *self {
            JoinPredicate::Intersects => 0.0,
            JoinPredicate::WithinDistance(eps) => eps,
        }
    }

    /// How far each *window* sent to a server must be extended per side so
    /// that no qualifying pair straddling a cell boundary is missed: ε/2,
    /// per Section 3 of the paper.
    ///
    /// Soundness: a qualifying pair at distance `d ≤ ε` whose reference
    /// point (pair midpoint) falls in cell `c` has both members within
    /// `d/2 ≤ ε/2` of the midpoint, hence both intersect `c` extended by
    /// ε/2.
    #[inline]
    pub fn window_extension(&self) -> f64 {
        self.epsilon() * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_coords(a, b, c, d)
    }

    #[test]
    fn intersects_predicate() {
        let p = JoinPredicate::Intersects;
        assert!(p.matches(&r(0.0, 0.0, 2.0, 2.0), &r(1.0, 1.0, 3.0, 3.0)));
        assert!(!p.matches(&r(0.0, 0.0, 1.0, 1.0), &r(2.0, 2.0, 3.0, 3.0)));
        assert_eq!(p.epsilon(), 0.0);
        assert_eq!(p.window_extension(), 0.0);
    }

    #[test]
    fn distance_predicate() {
        let p = JoinPredicate::WithinDistance(1.5);
        assert!(p.matches(&r(0.0, 0.0, 1.0, 1.0), &r(2.0, 0.0, 3.0, 1.0))); // gap 1.0
        assert!(!p.matches(&r(0.0, 0.0, 1.0, 1.0), &r(3.0, 0.0, 4.0, 1.0))); // gap 2.0
        assert_eq!(p.window_extension(), 0.75);
    }

    #[test]
    fn distance_predicate_on_points() {
        let p = JoinPredicate::WithinDistance(5.0);
        let a = Rect::point(Point::new(0.0, 0.0));
        let b = Rect::point(Point::new(3.0, 4.0));
        assert!(p.matches(&a, &b));
        let c = Rect::point(Point::new(3.0, 4.1));
        assert!(!p.matches(&a, &c));
    }

    #[test]
    fn zero_distance_equals_intersection_for_touching() {
        let p = JoinPredicate::WithinDistance(0.0);
        assert!(p.matches(&r(0.0, 0.0, 1.0, 1.0), &r(1.0, 0.0, 2.0, 1.0)));
        assert!(!p.matches(&r(0.0, 0.0, 1.0, 1.0), &r(1.001, 0.0, 2.0, 1.0)));
    }
}
