//! Identified spatial objects — the unit of storage and transfer.

use crate::{Point, Rect};

/// Object identifier, unique within one dataset.
pub type ObjectId = u32;

/// An identified MBR: what the servers store and what travels over the
/// simulated link.
///
/// The wire encoding (see `asj-net`) is `id (4 bytes) + 4 × f32 coordinates
/// (16 bytes)` = 20 bytes, the `Bobj` of the paper's cost model. Points are
/// degenerate MBRs and use the same encoding, keeping `Bobj` constant across
/// workloads as the paper assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialObject {
    pub id: ObjectId,
    pub mbr: Rect,
}

impl SpatialObject {
    /// Creates an object from an id and its MBR.
    #[inline]
    pub const fn new(id: ObjectId, mbr: Rect) -> Self {
        SpatialObject { id, mbr }
    }

    /// Creates a point object.
    #[inline]
    pub fn point(id: ObjectId, x: f64, y: f64) -> Self {
        SpatialObject::new(id, Rect::point(Point::new(x, y)))
    }

    /// Center of the object's MBR (the object itself for points).
    #[inline]
    pub fn center(&self) -> Point {
        self.mbr.center()
    }

    /// `true` for degenerate (point) objects.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.mbr.min == self.mbr.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_object_is_degenerate() {
        let o = SpatialObject::point(7, 1.0, 2.0);
        assert!(o.is_point());
        assert_eq!(o.center(), Point::new(1.0, 2.0));
        assert_eq!(o.id, 7);
    }

    #[test]
    fn mbr_object_center() {
        let o = SpatialObject::new(1, Rect::from_coords(0.0, 0.0, 2.0, 4.0));
        assert!(!o.is_point());
        assert_eq!(o.center(), Point::new(1.0, 2.0));
    }
}
