//! Axis-aligned rectangles (MBRs).

use crate::point::Point;

/// An axis-aligned rectangle, `min ≤ max` on both axes.
///
/// Doubles as the minimum bounding rectangle (MBR) of a spatial object and
/// as a query window. Degenerate rectangles (`min == max`) represent points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalizing the corner
    /// order so that `min ≤ max` holds on both axes.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from `(min_x, min_y, max_x, max_y)` without
    /// reordering; debug-asserts the invariant.
    #[inline]
    pub fn from_coords(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "invalid rect");
        Rect {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    /// A degenerate rectangle covering exactly one point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// The smallest rectangle containing every rectangle of `iter`, or
    /// `None` when `iter` is empty.
    pub fn union_of<I: IntoIterator<Item = Rect>>(iter: I) -> Option<Rect> {
        iter.into_iter().reduce(|a, b| a.union(&b))
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area; zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (margin), used by R-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Closed-set intersection test (shared boundaries intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection rectangle, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// `true` when `other` lies entirely inside `self` (closed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// Closed containment test for a point.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Half-open containment: `min ≤ p < max` on both axes.
    ///
    /// Half-open membership partitions space among grid cells so that a
    /// reference point belongs to exactly one cell — the backbone of
    /// duplicate avoidance. The global space rectangle is treated as closed
    /// on its far edges by the callers that need it ([`crate::Grid`]).
    #[inline]
    pub fn contains_half_open(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x < self.max.x && self.min.y <= p.y && p.y < self.max.y
    }

    /// Smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Area increase needed to include `other` — the R-tree insertion
    /// heuristic ("least enlargement").
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Rectangle grown by `delta` on every side (clamped to be valid when
    /// `delta` is negative).
    #[inline]
    pub fn expand(&self, delta: f64) -> Rect {
        let min = Point::new(self.min.x - delta, self.min.y - delta);
        let max = Point::new(self.max.x + delta, self.max.y + delta);
        if min.x <= max.x && min.y <= max.y {
            Rect { min, max }
        } else {
            Rect::point(self.center())
        }
    }

    /// Minimum Euclidean distance from this rectangle to a point (zero when
    /// the point is inside).
    #[inline]
    pub fn min_dist_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum Euclidean distance between two rectangles (zero when they
    /// intersect).
    #[inline]
    pub fn min_dist(&self, other: &Rect) -> f64 {
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// `true` when the two rectangles are within distance `eps` of each
    /// other — the ε-distance join predicate on MBRs.
    #[inline]
    pub fn within_distance(&self, other: &Rect, eps: f64) -> bool {
        // Compare squared distances to skip the sqrt.
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        dx * dx + dy * dy <= eps * eps
    }

    /// Splits into four equal quadrants, ordered `[SW, SE, NW, NE]`.
    ///
    /// This is the regular 2×2 grid every algorithm in the paper uses for
    /// repartitioning (`k = 2`).
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::from_coords(self.min.x, self.min.y, c.x, c.y),
            Rect::from_coords(c.x, self.min.y, self.max.x, c.y),
            Rect::from_coords(self.min.x, c.y, c.x, self.max.y),
            Rect::from_coords(c.x, c.y, self.max.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_coords(a, b, c, d)
    }

    #[test]
    fn new_normalizes_corners() {
        let rect = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 4.0));
        assert_eq!(rect, r(2.0, 1.0, 5.0, 4.0));
    }

    #[test]
    fn area_width_height() {
        let rect = r(1.0, 2.0, 4.0, 8.0);
        assert_eq!(rect.width(), 3.0);
        assert_eq!(rect.height(), 6.0);
        assert_eq!(rect.area(), 18.0);
        assert_eq!(rect.margin(), 9.0);
    }

    #[test]
    fn degenerate_point_rect() {
        let rect = Rect::point(Point::new(3.0, 3.0));
        assert_eq!(rect.area(), 0.0);
        assert!(rect.contains(&Point::new(3.0, 3.0)));
        assert!(!rect.contains_half_open(&Point::new(3.0, 3.0)));
    }

    #[test]
    fn intersects_overlapping_and_touching() {
        assert!(r(0.0, 0.0, 2.0, 2.0).intersects(&r(1.0, 1.0, 3.0, 3.0)));
        // Shared edge counts as intersection (closed semantics).
        assert!(r(0.0, 0.0, 2.0, 2.0).intersects(&r(2.0, 0.0, 4.0, 2.0)));
        assert!(!r(0.0, 0.0, 2.0, 2.0).intersects(&r(2.1, 0.0, 4.0, 2.0)));
    }

    #[test]
    fn intersection_rect() {
        let i = r(0.0, 0.0, 2.0, 2.0).intersection(&r(1.0, 1.0, 3.0, 3.0));
        assert_eq!(i, Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(
            r(0.0, 0.0, 1.0, 1.0).intersection(&r(5.0, 5.0, 6.0, 6.0)),
            None
        );
    }

    #[test]
    fn union_covers_both() {
        let u = r(0.0, 0.0, 1.0, 1.0).union(&r(2.0, -1.0, 3.0, 0.5));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
        assert!(u.contains_rect(&r(0.0, 0.0, 1.0, 1.0)));
        assert!(u.contains_rect(&r(2.0, -1.0, 3.0, 0.5)));
    }

    #[test]
    fn union_of_iter() {
        assert_eq!(Rect::union_of(std::iter::empty()), None);
        let u = Rect::union_of(vec![r(0.0, 0.0, 1.0, 1.0), r(3.0, 3.0, 4.0, 4.0)]).unwrap();
        assert_eq!(u, r(0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let big = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(big.enlargement(&r(1.0, 1.0, 2.0, 2.0)), 0.0);
        assert!(big.enlargement(&r(9.0, 9.0, 12.0, 12.0)) > 0.0);
    }

    #[test]
    fn expand_grows_every_side() {
        let e = r(1.0, 1.0, 2.0, 2.0).expand(0.5);
        assert_eq!(e, r(0.5, 0.5, 2.5, 2.5));
    }

    #[test]
    fn expand_negative_clamps() {
        let e = r(0.0, 0.0, 1.0, 1.0).expand(-2.0);
        assert_eq!(e.area(), 0.0);
    }

    #[test]
    fn min_dist_point_cases() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(rect.min_dist_point(&Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(rect.min_dist_point(&Point::new(5.0, 1.0)), 3.0); // right
        assert_eq!(rect.min_dist_point(&Point::new(5.0, 6.0)), 5.0); // corner 3-4-5
    }

    #[test]
    fn min_dist_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.min_dist(&r(0.5, 0.5, 2.0, 2.0)), 0.0);
        assert_eq!(a.min_dist(&r(4.0, 0.0, 5.0, 1.0)), 3.0);
        assert_eq!(a.min_dist(&r(4.0, 5.0, 6.0, 7.0)), 5.0);
    }

    #[test]
    fn within_distance_matches_min_dist() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 0.0, 5.0, 1.0);
        assert!(a.within_distance(&b, 3.0));
        assert!(!a.within_distance(&b, 2.999));
    }

    #[test]
    fn quadrants_partition_area() {
        let rect = r(0.0, 0.0, 4.0, 8.0);
        let q = rect.quadrants();
        let total: f64 = q.iter().map(|x| x.area()).sum();
        assert_eq!(total, rect.area());
        assert_eq!(q[0], r(0.0, 0.0, 2.0, 4.0));
        assert_eq!(q[3], r(2.0, 4.0, 4.0, 8.0));
        for sub in &q {
            assert!(rect.contains_rect(sub));
        }
    }
}
