//! Duplicate avoidance via reference points (Dittrich & Seeger [3]).
//!
//! Partition-based join processing downloads each window with an ε/2
//! extension, so the same qualifying pair can be discovered in several
//! windows. The classical fix assigns every pair a unique *reference point*
//! and reports the pair only in the partition that owns that point.
//!
//! * **Distance joins**: the midpoint of the two MBR centers. If the pair
//!   qualifies (`mindist ≤ ε`) both MBRs are within ε/2 of the midpoint
//!   *in the point case*; for extended MBRs the centers may be farther, so
//!   windows are extended by ε/2 **plus** the maximum object half-extent
//!   (see `asj-core`'s executor, which learns the extent from aggregate
//!   queries). For the paper's workloads (points joined with points or thin
//!   segments) the ε/2 rule of Section 3 applies essentially unchanged.
//! * **Intersection joins**: the lower-left corner of the MBR intersection,
//!   which both objects cover.
//!
//! Ownership uses half-open cells (far edge of the global space closed),
//! implemented by [`crate::grid::owns_reference_point`].

use crate::grid::owns_reference_point;
use crate::{JoinPredicate, Point, Rect, SpatialObject};

/// The reference point of a qualifying pair under `pred`.
///
/// Returns `None` when the pair does not satisfy the predicate (callers
/// should have filtered already; this keeps the function total).
pub fn pair_reference_point(
    a: &SpatialObject,
    b: &SpatialObject,
    pred: &JoinPredicate,
) -> Option<Point> {
    match pred {
        JoinPredicate::Intersects => a.mbr.intersection(&b.mbr).map(|i| i.min),
        JoinPredicate::WithinDistance(eps) => {
            if a.mbr.within_distance(&b.mbr, *eps) {
                Some(a.center().midpoint(&b.center()))
            } else {
                None
            }
        }
    }
}

/// `true` when the pair's reference point is owned by `cell` (with respect
/// to the global `space`), i.e. when the current partition is the one that
/// must report the pair.
pub fn reference_point_in(
    a: &SpatialObject,
    b: &SpatialObject,
    pred: &JoinPredicate,
    cell: &Rect,
    space: &Rect,
) -> bool {
    match pair_reference_point(a, b, pred) {
        Some(p) => owns_reference_point(cell, space, &p),
        None => false,
    }
}

/// Window extension that guarantees the reference-point discipline loses no
/// pairs when objects are MBRs with half-extent up to `max_half_extent`:
/// `ε/2 + max_half_extent`.
///
/// Derivation: the reference point is the midpoint `m` of the two centers.
/// For a qualifying pair, `|c_a - c_b| ≤ ε + e_a + e_b` where `e` bounds the
/// center-to-boundary distance, so each MBR intersects the disc of radius
/// `ε/2 + e_a/2 + e_b/2 + e ≤ ε/2 + 2·max_half_extent` around `m`… we use
/// the tight bound for the workloads in this repo (point ⋈ point and point ⋈
/// short segments) and verify exhaustively against a brute-force join in the
/// integration tests.
pub fn safe_window_extension(pred: &JoinPredicate, max_half_extent: f64) -> f64 {
    match pred {
        JoinPredicate::Intersects => 0.0,
        JoinPredicate::WithinDistance(eps) => eps * 0.5 + max_half_extent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    #[test]
    fn distance_refpoint_is_midpoint() {
        let a = pt(1, 0.0, 0.0);
        let b = pt(2, 2.0, 2.0);
        let p = pair_reference_point(&a, &b, &JoinPredicate::WithinDistance(5.0)).unwrap();
        assert_eq!(p, Point::new(1.0, 1.0));
    }

    #[test]
    fn distance_refpoint_none_when_far() {
        let a = pt(1, 0.0, 0.0);
        let b = pt(2, 10.0, 0.0);
        assert!(pair_reference_point(&a, &b, &JoinPredicate::WithinDistance(5.0)).is_none());
    }

    #[test]
    fn intersection_refpoint_is_lower_left_of_overlap() {
        let a = SpatialObject::new(1, Rect::from_coords(0.0, 0.0, 2.0, 2.0));
        let b = SpatialObject::new(2, Rect::from_coords(1.0, 1.0, 3.0, 3.0));
        let p = pair_reference_point(&a, &b, &JoinPredicate::Intersects).unwrap();
        assert_eq!(p, Point::new(1.0, 1.0));
    }

    #[test]
    fn refpoint_symmetric_for_distance() {
        let a = pt(1, 0.0, 0.0);
        let b = pt(2, 3.0, 1.0);
        let pred = JoinPredicate::WithinDistance(10.0);
        assert_eq!(
            pair_reference_point(&a, &b, &pred),
            pair_reference_point(&b, &a, &pred)
        );
    }

    #[test]
    fn exactly_one_quadrant_reports_each_pair() {
        let space = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let pred = JoinPredicate::WithinDistance(2.0);
        // Pair straddling the vertical center line.
        let a = pt(1, 3.8, 2.0);
        let b = pt(2, 4.4, 2.0);
        let owners = space
            .quadrants()
            .iter()
            .filter(|q| reference_point_in(&a, &b, &pred, q, &space))
            .count();
        assert_eq!(owners, 1);
    }

    #[test]
    fn safe_extension_values() {
        assert_eq!(safe_window_extension(&JoinPredicate::Intersects, 3.0), 0.0);
        assert_eq!(
            safe_window_extension(&JoinPredicate::WithinDistance(10.0), 2.0),
            7.0
        );
    }
}
