//! Minimal offline stand-in for `criterion`.
//!
//! Provides the macro and type surface this workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`] with
//! `bench_function` and `benchmark_group`, and [`Bencher::iter`] /
//! [`Bencher::iter_batched`]. Instead of statistical sampling it runs a
//! short warm-up, then a fixed measurement window, and prints mean
//! wall-clock time per iteration — enough to track regressions by eye
//! and to keep `cargo bench` compiling and running offline.

use std::time::{Duration, Instant};

/// How long each benchmark measures after warm-up.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Batch-size hint, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure of `bench_function`; drives the timed loop.
pub struct Bencher {
    /// Total time spent in measured routine calls.
    elapsed: Duration,
    /// Number of measured routine calls.
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<48} (no iterations)");
            return;
        }
        let per_iter = self.elapsed / self.iterations as u32;
        println!(
            "{name:<48} {:>12} /iter over {} iters",
            format_duration(per_iter),
            self.iterations
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The harness entry point, one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness is time-budgeted,
    /// not sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
    }
}
