//! Minimal offline stand-in for `criterion`.
//!
//! Provides the macro and type surface this workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`] with
//! `bench_function` and `benchmark_group`, and [`Bencher::iter`] /
//! [`Bencher::iter_batched`]. Instead of statistical sampling it runs a
//! short warm-up, then a fixed measurement window, and prints mean
//! wall-clock time per iteration — enough to track regressions by eye
//! and to keep `cargo bench` compiling and running offline.
//!
//! Two additions over the real crate's surface, used by the `wallclock`
//! perf-trajectory harness in `asj-bench`: [`Criterion::with_windows`]
//! (shorter warm-up/measure windows for a `--quick` CI mode) and
//! [`Criterion::measurements`] (the recorded per-benchmark means, so a
//! harness can persist them as JSON instead of scraping stdout).

use std::time::{Duration, Instant};

/// How long each benchmark measures after warm-up.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// The recorded outcome of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark name (`group/name` for grouped benches).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured inside the window.
    pub iterations: u64,
}

/// Batch-size hint, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure of `bench_function`; drives the timed loop.
pub struct Bencher {
    /// Total time spent in measured routine calls.
    elapsed: Duration,
    /// Number of measured routine calls.
    iterations: u64,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            warmup,
            measure,
        }
    }

    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }

    fn measurement(&self, name: &str) -> Measurement {
        let mean_ns = if self.iterations == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iterations as f64
        };
        Measurement {
            name: name.to_string(),
            mean_ns,
            iterations: self.iterations,
        }
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<48} (no iterations)");
            return;
        }
        let per_iter = self.elapsed / self.iterations as u32;
        println!(
            "{name:<48} {:>12} /iter over {} iters",
            format_duration(per_iter),
            self.iterations
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The harness entry point, one per `criterion_group!`.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: WARMUP_WINDOW,
            measure: MEASURE_WINDOW,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Overrides the warm-up / measurement windows (e.g. a `--quick` CI
    /// mode that trades precision for turnaround).
    pub fn with_windows(mut self, warmup: Duration, measure: Duration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Everything measured so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.warmup, self.measure);
        f(&mut b);
        b.report(name);
        self.measurements.push(b.measurement(name));
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness is time-budgeted,
    /// not sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.parent.run_one(&full, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
        let m = &c.measurements()[0];
        assert_eq!(m.name, "shim/self_test");
        assert!(m.iterations > 0);
        assert!(m.mean_ns >= 0.0);
    }

    #[test]
    fn windows_are_configurable_and_groups_record() {
        let mut c =
            Criterion::default().with_windows(Duration::from_millis(1), Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_function("x", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.measurements().len(), 1);
        assert_eq!(c.measurements()[0].name, "g/x");
        assert!(c.measurements()[0].iterations > 0);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
    }
}
