//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Implements the two facilities the workspace uses:
//!
//! * [`channel`] — MPMC channels with cloneable [`channel::Sender`] /
//!   [`channel::Receiver`] and disconnect-on-last-drop semantics.
//!   `bounded(n)` shares the unbounded implementation: none of the
//!   workspace call sites rely on back-pressure blocking (the only
//!   bounded channel is a 1-slot reply channel that holds ≤ 1 message).
//! * [`thread`] — `scope`/`spawn` on top of `std::thread::scope`, with
//!   crossbeam's closure signature (the spawned closure receives the
//!   scope again so it could spawn nested threads).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (MPMC, each message seen once).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Returned when every receiver is gone; carries the message back.
    #[derive(Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Returned when the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel of bounded capacity. The bound is accepted for
    /// API compatibility; see the module docs for why it is not enforced.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel poisoned");
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut q = self.shared.queue.lock().expect("channel poisoned");
                q.senders -= 1;
                q.senders
            };
            if remaining == 0 {
                // Wake receivers blocked in recv so they observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.receivers -= 1;
        }
    }
}

pub mod thread {
    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns. Unlike
    /// crossbeam, a panicking child propagates on `join()` (all call
    /// sites in this workspace join every handle), so the outer `Result`
    /// is always `Ok` unless `f` itself panics.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn cross_thread_rpc_shape() {
        let (tx, rx) = unbounded::<(u64, super::channel::Sender<u64>)>();
        let server = std::thread::spawn(move || {
            let mut served = 0;
            while let Ok((n, reply)) = rx.recv() {
                let _ = reply.send(n * 2);
                served += 1;
            }
            served
        });
        for i in 0..10u64 {
            let (rtx, rrx) = bounded(1);
            tx.send((i, rtx)).unwrap();
            assert_eq!(rrx.recv(), Ok(i * 2));
        }
        drop(tx);
        assert_eq!(server.join().unwrap(), 10);
    }

    #[test]
    fn scoped_threads_borrow() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
