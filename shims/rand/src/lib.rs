//! Minimal offline stand-in for `rand` 0.9.
//!
//! Provides the trait surface the workspace uses — [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64-expanded `seed_from_u64` the real
//! crate documents), and [`Rng::random_range`] over integer and float
//! ranges. Deterministic generators only; no OS entropy source.

/// Core generator interface: a source of uniform random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods; blanket-implemented for every
/// [`RngCore`] as in the real crate.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    /// Panics on empty ranges, like the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform boolean.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, mirroring the
    /// real crate's documented behaviour.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Maps a random word to the unit interval `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a random word to the closed unit interval `[0, 1]`.
#[inline]
fn unit_f64_inclusive(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to `end` when the span is tiny.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "cannot sample empty range");
        if a == b {
            return a;
        }
        a + (b - a) * unit_f64_inclusive(rng.next_u64())
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample_from(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let idx = widening_index(rng.next_u64(), span);
                (self.start as i128 + idx as i128) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let idx = widening_index(rng.next_u64(), span);
                (a as i128 + idx as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Bias-free-enough index in `[0, span)` via 64×64→128 multiply-shift.
#[inline]
fn widening_index(word: u64, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u128::from(u64::MAX) + 1);
    ((u128::from(word) * span) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);

    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Step(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&v));
            let w = rng.random_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = Step(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
        for _ in 0..1000 {
            let v = rng.random_range(-2i32..=2);
            assert!((-2..=2).contains(&v));
        }
    }

    #[test]
    fn degenerate_inclusive_range_returns_start() {
        let mut rng = Step(1);
        assert_eq!(rng.random_range(5.0f64..=5.0), 5.0);
        assert_eq!(rng.random_range(9u32..=9), 9);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Raw([u8; 16]);
        impl SeedableRng for Raw {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                Raw(seed)
            }
        }
        assert_eq!(Raw::seed_from_u64(3).0, Raw::seed_from_u64(3).0);
        assert_ne!(Raw::seed_from_u64(3).0, Raw::seed_from_u64(4).0);
    }
}
