//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property suites use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), strategies built from ranges / tuples / [`prop_map`] /
//! [`Just`] / [`any`] / [`prop_oneof!`] / `prop::collection::vec`, and
//! the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports the assertion message
//!   (argument values travel in `Debug` of the panic payload only if the
//!   assertion includes them). Cases are deterministic per test name, so
//!   failures reproduce exactly across runs.
//! * **No persistence** — there is no `proptest-regressions` directory.
//!
//! [`prop_map`]: Strategy::prop_map

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Deterministic generator driving all strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every test has a stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then a splitmix scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; keep it so coverage matches upstream
        // expectations.
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Drives `config.cases` successful cases of `body`. Called by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_test<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut executed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).saturating_add(1024);
    while executed < config.cases {
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many prop_assume! rejections ({rejected}) — \
                     strategy rarely satisfies the assumption"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {executed}: {msg}")
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };

    /// Namespace mirror so `prop::collection::vec(..)` resolves after a
    /// glob import of this prelude, as with the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            $crate::run_test(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&$strategy, __proptest_rng);)*
                let mut __proptest_case =
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                __proptest_case()
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        // Bind first so lints (e.g. neg_cmp_op_on_partial_ord) see a plain
        // bool negation, not the caller's comparison expression.
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), left, right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Shape {
        Dot,
        Box(f64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -50i32..=50, y in 0.0f64..10.0, n in 0usize..5) {
            prop_assert!((-50..=50).contains(&x));
            prop_assert!((0.0..10.0).contains(&y));
            prop_assert!(n < 5);
        }

        #[test]
        fn tuples_and_maps(p in (0u32..100, 0u32..100).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 199);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_just(s in prop_oneof![
            Just(Shape::Dot),
            (0.1f64..5.0).prop_map(Shape::Box),
        ]) {
            match s {
                Shape::Dot => {}
                Shape::Box(w) => prop_assert!(w > 0.0),
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn any_covers_primitives(b in any::<bool>(), x in any::<u8>(), w in any::<u64>()) {
            // Touch all three so the strategies must produce values.
            let _ = (b, w);
            prop_assert!(u64::from(x) <= 255);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_test(&ProptestConfig::with_cases(8), "failing_property", |_rng| {
            Err(TestCaseError::fail("forced"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
