//! Strategy combinators: how test-case values are generated.

use crate::TestRng;

/// A generator of values of one type. Object safe; generic combinators
/// carry `where Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter (rejection-sampled with a cap).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 10000 candidates in a row",
            self.whence
        )
    }
}

/// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// `any::<T>()`: the full value domain of a primitive type.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128) as u128 + 1;
                let idx = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (a as i128 + idx) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
