//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha implementation (8 rounds, 64-bit block
//! counter, zero nonce) — deterministic and statistically sound for the
//! simulation workloads here. The keystream is *not* guaranteed to be
//! word-for-word identical to the real `rand_chacha` crate's; seeds in
//! this repository pin distributions, not exact streams.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// The ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 ⇒ exhausted.
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_advance_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn range_sampling_compiles_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x = rng.random_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&x));
        let n = rng.random_range(0usize..10);
        assert!(n < 10);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of family");
        }
    }
}
