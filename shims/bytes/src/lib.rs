//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides exactly the subset the workspace uses: [`Bytes`] (cheaply
//! cloneable immutable view with a consuming read cursor), [`BytesMut`]
//! (append-only builder), and the [`Buf`]/[`BufMut`] traits with the
//! big-endian integer/float accessors of the real crate. Build this
//! workspace against the real `bytes` by deleting this shim and pointing
//! the workspace dependency at crates.io.

use std::sync::Arc;

/// Read-side accessors. Like the real crate, `get_*` consume from the
/// front and panic when the buffer is too short; pair them with
/// [`Buf::remaining`] checks.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// Discards the next `n` bytes (panics past the end, like the real
    /// crate).
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
    fn get_f32(&mut self) -> f32;
    fn get_f64(&mut self) -> f64;
}

/// Write-side accessors (big-endian, matching the real crate's defaults).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_f32(&mut self, v: f32);
    fn put_f64(&mut self, v: f64);
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice into a fresh buffer — how a server ships the
    /// contents of a reused encode buffer without surrendering it.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view of the remaining bytes; `range` is relative to the cursor.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds: {range:?} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

macro_rules! get_be {
    ($self:ident, $ty:ty) => {{
        let mut raw = [0u8; std::mem::size_of::<$ty>()];
        raw.copy_from_slice($self.take(std::mem::size_of::<$ty>()));
        <$ty>::from_be_bytes(raw)
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        self.take(n);
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        get_be!(self, u32)
    }

    fn get_u64(&mut self) -> u64 {
        get_be!(self, u64)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(get_be!(self, u32))
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(get_be!(self, u64))
    }
}

/// A growable byte buffer; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes — the exact
    /// one-allocation reserve the codec's encoders rely on.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Empties the buffer, keeping its allocation — the reuse primitive of
    /// the server dispatch loop.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f32(1.5);
        b.put_f64(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 8);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.get_u8();
        let s = b.slice(1..3);
        assert_eq!(s.as_slice(), &[3, 4]);
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let mut b = BytesMut::with_capacity(8);
        b.reserve(100);
        let cap = b.capacity();
        assert!(cap >= 100);
        b.put_u64(7);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "clear must keep the allocation");
        b.put_u32(9);
        assert_eq!(Bytes::copy_from_slice(&b).as_slice(), 9u32.to_be_bytes());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1024);
    }
}
