//! # adhoc-spatial-joins
//!
//! Facade crate for the reproduction of *Ad-hoc Distributed Spatial Joins on
//! Mobile Devices* (Kalnis, Mamoulis, Bakiras, Li — IPDPS 2006).
//!
//! A mobile device evaluates a spatial join between two datasets hosted on
//! **non-cooperative** servers that only answer `WINDOW`, `COUNT` and
//! `ε-RANGE` queries, minimizing *transferred bytes* under the device's
//! memory constraint. This crate re-exports the whole system:
//!
//! * [`geom`] — geometry kernel (rectangles, grids, duplicate avoidance,
//!   plane sweep);
//! * [`rtree`] — from-scratch aggregate R-tree (server indexes, SemiJoin);
//! * [`net`] — the simulated wireless link: MTU/TCP packet cost model,
//!   wire codec, metered transports, the scatter-gather shard router and
//!   the client-side statistics/window cache;
//! * [`server`] — the two remote spatial services;
//! * [`device`] — the PDA runtime: bounded buffer, HBSJ/NLSJ physical
//!   operators;
//! * [`core`] — the paper's contribution: the cost model and the MobiJoin,
//!   **UpJoin**, **SrJoin** and SemiJoin algorithms;
//! * [`workloads`] — Gaussian-cluster / uniform / synthetic-rail dataset
//!   generators.
//!
//! ## Fault tolerance
//!
//! Real fleets are lossy, so every physical edge can be wrapped in a
//! deterministic, seeded fault layer (`net::FaultLayer`) injecting
//! drops, delays, garbled reply frames and crash-then-restart windows
//! from a replayable `net::FaultPlan` —
//! `Deployment` builders stack it with `with_faults`. Recovery rides on
//! `net::RetryPolicy` (`NetConfig::with_retry`): bounded attempts with
//! deterministic exponential backoff, split by idempotency class —
//! read-only queries retry freely, while `ApplyUpdates` batches retry
//! only under a sequence-numbered dedup envelope, so a duplicated
//! delivery can never double-bump a generation. A sharded scatter
//! retries failed shards *individually*; when one exhausts its budget
//! the client gets a typed `Unavailable` (never a panic, never a torn
//! result), the failing shard is recorded in the fleet snapshot, and
//! per-shard generation vectors never regress. Retries are **off by
//! default**, and off means off: with `RetryPolicy::default()` and a
//! no-op plan the whole machinery is byte-identical to an unwrapped
//! deployment — proven for all six algorithms in `tests/chaos.rs`,
//! which also races joins against a live writer over faulted fleets
//! across pinned seeds. `CostModel::with_retry_factor` prices the
//! expected retransmission cost so planners can reason about lossy
//! links, and the `fault-matrix` bench sweeps drop rate × retry budget
//! (success within the budget is exactly monotone in the budget —
//! asserted in CI).
//!
//! ## Replication & failover
//!
//! `DeploymentBuilder::with_replicas(n)` replicates every shard server
//! `n`-fold behind the same scatter-gather router. Reads are spread
//! across a shard's replica set by request hash; a lost exchange fails
//! over to the next sibling *before* any retry budget is spent, and a
//! per-endpoint circuit breaker (`net::BreakerConfig`, set via
//! `NetConfig::with_breakers`) trips after K consecutive failures so
//! later scatters route around a dead sibling until a half-open probe —
//! scheduled by exchange count, never wall clock — reclaims it. Update
//! batches broadcast to **all** replicas under the dedup envelope (one
//! surviving ack carries the batch), a per-shard generation floor
//! rejects replies from a lagging replica (the read refetches from a
//! sibling), and a replica that stayed dark resynchronizes from its
//! freshest sibling at its crash-restart hook. For degraded reads,
//! `NetConfig::with_allow_partial` (off by default, and refused when
//! the client cache is on) lets a scatter complete when a whole replica
//! set is exhausted: the uncovered shards land in
//! `FleetSnapshot::failed_shards` and every `JoinReport` carries a
//! `coverage` fraction. `with_replicas(1)` is byte-identical to an
//! unreplicated deployment, `CostModel::with_replica_fanout` prices the
//! update broadcast, and the fault matrix's replica axis asserts in CI
//! that success is exactly monotone in the replica count:
//!
//! ```
//! use adhoc_spatial_joins::prelude::*;
//! use asj_core::DeploymentBuilder;
//!
//! let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
//! let hotels = gaussian_clusters(&SyntheticSpec::new(space, 200, 4), 7);
//! let restaurants = gaussian_clusters(&SyntheticSpec::new(space, 300, 8), 8);
//! let deployment = DeploymentBuilder::new(hotels, restaurants)
//!     .with_shards(4, 4)
//!     .with_replicas(2) // two full servers per shard
//!     .live()
//!     .build();
//! let report = SrJoin::default()
//!     .run(&deployment, &JoinSpec::distance_join(500.0))
//!     .unwrap();
//! assert_eq!(report.coverage, 1.0); // every shard served
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use adhoc_spatial_joins::prelude::*;
//!
//! // Two "remote" datasets: hotels and restaurants.
//! let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
//! let hotels = gaussian_clusters(&SyntheticSpec::new(space, 200, 4), 7);
//! let restaurants = gaussian_clusters(&SyntheticSpec::new(space, 300, 8), 8);
//!
//! // Stand up the two non-cooperative servers and a metered deployment.
//! let deployment = Deployment::in_process(hotels, restaurants, NetConfig::default());
//!
//! // "Hotels within 500 units of a restaurant", minimizing transfer bytes.
//! let spec = JoinSpec::distance_join(500.0);
//! let report = SrJoin::default().run(&deployment, &spec).unwrap();
//! println!(
//!     "pairs: {} | transferred: {} bytes",
//!     report.pairs.len(),
//!     report.total_bytes()
//! );
//! ```

pub use asj_core as core;
pub use asj_device as device;
pub use asj_geom as geom;
pub use asj_net as net;
pub use asj_rtree as rtree;
pub use asj_server as server;
pub use asj_workloads as workloads;

/// Convenience prelude used by the examples.
pub mod prelude {
    pub use asj_core::{
        CostModel, Deployment, DistributedJoin, GridJoin, JoinReport, JoinSpec, MobiJoin,
        NaiveJoin, SemiJoin, SrJoin, UpJoin,
    };
    pub use asj_geom::{JoinPredicate, Point, Rect, SpatialObject};
    pub use asj_net::NetConfig;
    pub use asj_workloads::{gaussian_clusters, germany_rail, uniform, SyntheticSpec};
}
