//! Quickstart: evaluate an ad-hoc distributed spatial join on a simulated
//! mobile device.
//!
//! Two non-cooperative "servers" host hotels and restaurants; the device
//! may only send WINDOW / COUNT / ε-RANGE queries and wants to minimize
//! transferred bytes. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adhoc_spatial_joins::prelude::*;

fn main() {
    // A 10 km × 10 km city. Hotels cluster around 4 districts,
    // restaurants around 8.
    let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let hotels = gaussian_clusters(&SyntheticSpec::new(space, 400, 4), 7);
    let restaurants = gaussian_clusters(&SyntheticSpec::new(space, 800, 8), 1007);

    // Two independent servers, metered WiFi-style links (MTU 1500,
    // 40-byte TCP/IP headers), a PDA with an 800-object buffer.
    let deployment = Deployment::in_process(hotels, restaurants, NetConfig::default());

    // "Find (hotel, restaurant) pairs within 500 m of each other."
    let spec = JoinSpec::distance_join(500.0);

    println!("algorithm   pairs   bytes   queries   objects-downloaded");
    for algo in [
        Box::new(GridJoin::default()) as Box<dyn DistributedJoin>,
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
    ] {
        let report = algo.run(&deployment, &spec).expect("join failed");
        println!(
            "{:<10} {:>6} {:>8} {:>8} {:>12}",
            report.algorithm,
            report.pairs.len(),
            report.total_bytes(),
            report.total_queries(),
            report.objects_downloaded(),
        );
    }

    // The adaptive algorithms (UpJoin/SrJoin) should transfer the fewest
    // bytes: they COUNT before they download and prune empty regions.
}
