//! Live updates: joins racing a moving fleet of objects.
//!
//! The servers are built *live* — each store is a generational snapshot
//! that applies batched insert/delete/move updates copy-on-write and
//! publishes the result atomically as the next generation. Responses are
//! stamped with the serving generation, and the client-side cache keys
//! its entries by it, so nothing ever needs invalidating: after an
//! update tick the old entries simply stop matching. Run with:
//!
//! ```text
//! cargo run --release --example live_update
//! ```

use adhoc_spatial_joins::prelude::*;
use asj_core::{DeploymentBuilder, Side};
use asj_net::Update;
use asj_workloads::{TrajectorySpec, TrajectoryStream};

fn main() {
    // A 10 km × 10 km city: delivery vans (moving) and restaurants
    // (fixed). The vans drift each tick; the join is re-evaluated live.
    let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let vans = gaussian_clusters(&SyntheticSpec::new(space, 400, 4), 7);
    let restaurants = gaussian_clusters(&SyntheticSpec::new(space, 800, 8), 1007);

    let deployment = DeploymentBuilder::new(vans.clone(), restaurants)
        .with_space(space)
        .with_client_cache(true)
        .live()
        .build();

    // A pinned-seed trajectory: 20 % of the vans move up to 200 m per
    // tick. The stream emits the movers at their new positions; each
    // batch becomes one ApplyUpdates message on the metered link.
    let mut traffic = TrajectoryStream::new(
        &vans,
        TrajectorySpec {
            space,
            step: 200.0,
            move_fraction: 0.2,
        },
        42,
    );

    let spec = JoinSpec::distance_join(500.0);
    println!("tick   generation   moved   pairs   bytes   cache-hit-rate");
    for tick in 0..5u32 {
        let (generation, moved) = if tick == 0 {
            (0, 0) // first join runs against the pristine stores
        } else {
            let batch: Vec<Update> = traffic
                .tick()
                .into_iter()
                .map(|o| Update::Move {
                    id: o.id,
                    to: o.mbr,
                })
                .collect();
            assert!(!batch.is_empty(), "the fleet never sits entirely still");
            let moved = batch.len();
            (deployment.apply_updates(Side::R, batch), moved)
        };
        let report = SrJoin::default()
            .run(&deployment, &spec)
            .expect("join failed");
        println!(
            "{:>4} {:>12} {:>7} {:>7} {:>7} {:>16.2}",
            tick,
            generation,
            moved,
            report.pairs.len(),
            report.total_bytes(),
            report.cache_hit_rate(),
        );
    }

    // Later joins still hit the cache for whatever the fleet did *not*
    // disturb — but only at the current generation: a stamp mismatch can
    // never serve stale objects (the differential suites prove it).
}
