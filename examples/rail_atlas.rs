//! The paper's Figure 8 workload: join a large "real" dataset (the
//! ~35 000-segment synthetic stand-in for the German railway map) with a
//! small clustered point set — e.g. "find rail segments within 100 units
//! of a point of interest", with the servers deployed on their own
//! threads (the distributed topology of the prototype).
//!
//! ```text
//! cargo run --release --example rail_atlas
//! ```

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_workloads::RailSpec;

fn main() {
    let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let pois = gaussian_clusters(&SyntheticSpec::new(space, 1000, 4), 11);
    let rail = germany_rail(&RailSpec::default(), 11);
    println!(
        "datasets: {} points of interest, {} rail segments",
        pois.len(),
        rail.len()
    );

    // Window extension must cover the largest segment half-diagonal so
    // duplicate avoidance stays exact on MBR objects (DESIGN.md §5).
    let hint = rail
        .iter()
        .map(|o| o.mbr.width().hypot(o.mbr.height()) * 0.5)
        .fold(0.0f64, f64::max);

    // Servers on their own threads, cooperative so SemiJoin can run too.
    let dep = DeploymentBuilder::new(pois, rail)
        .with_space(space)
        .with_buffer(800)
        .cooperative()
        .threaded()
        .build();

    // Bucket ε-RANGE submission, as the paper uses for the real data.
    let spec = JoinSpec::distance_join(100.0)
        .with_bucket_nlsj(true)
        .with_mbr_half_extent(hint);

    println!("\nalgorithm   pairs    bytes  aggregate-queries  objects");
    let mut baseline_pairs: Option<usize> = None;
    for algo in [
        Box::new(SrJoin::default()) as Box<dyn DistributedJoin>,
        Box::new(UpJoin::default()),
        Box::new(MobiJoin),
        Box::new(SemiJoin::default()),
    ] {
        let rep = algo.run(&dep, &spec).expect("join failed");
        println!(
            "{:<10} {:>6} {:>8} {:>14} {:>10}",
            rep.algorithm,
            rep.pairs.len(),
            rep.total_bytes(),
            rep.aggregate_queries(),
            rep.objects_downloaded()
        );
        if let Some(p) = baseline_pairs {
            assert_eq!(p, rep.pairs.len(), "all algorithms must agree");
        }
        baseline_pairs = Some(rep.pairs.len());
    }
    println!(
        "\nNote: SemiJoin needs the cooperative extension the paper argues real\n\
         services refuse; it is shown as the Figure 8(b) comparator."
    );
}
