//! The paper's motivating scenario (Section 1): a traveller in Athens
//! combines the Michelin guide (restaurants, one server) with a local map
//! service (hotels, another server) — two services that do not cooperate
//! and publish no indexes.
//!
//! Queries demonstrated:
//! 1. the distance join — "hotels within 500 m of a one-star restaurant";
//! 2. the **iceberg distance semi-join** — "hotels close to at least 10
//!    restaurants" (Section 1's representative example);
//! 3. tariff asymmetry — the roaming link to the guide costs 3× per byte,
//!    and the cost-based operator choice reacts.
//!
//! ```text
//! cargo run --release --example city_guide
//! ```

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;

fn main() {
    let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    // The historical center: hotels dense downtown, restaurants in a few
    // gastronomic quarters.
    let hotels = gaussian_clusters(&SyntheticSpec::new(space, 600, 3), 42);
    let restaurants = gaussian_clusters(&SyntheticSpec::new(space, 900, 6), 4242);

    // --- Query 1: plain distance join -----------------------------------
    let dep = DeploymentBuilder::new(hotels.clone(), restaurants.clone())
        .with_space(space)
        .with_buffer(800)
        .build();
    let join = SrJoin::default()
        .run(&dep, &JoinSpec::distance_join(500.0))
        .unwrap();
    println!(
        "hotels within 500 m of a restaurant: {} qualifying pairs, {} bytes",
        join.pairs.len(),
        join.total_bytes()
    );

    // --- Query 2: iceberg semi-join --------------------------------------
    // "Find the hotels which are close to at least 10 restaurants."
    let iceberg_spec = JoinSpec::iceberg(500.0, 10);
    let ice_report = SrJoin::default().run(&dep, &iceberg_spec).unwrap();
    let iceberg = ice_report.iceberg.as_ref().unwrap();
    println!(
        "hotels with ≥10 restaurants within 500 m: {} of {} hotels ({} bytes)",
        iceberg.qualifying.len(),
        600,
        ice_report.total_bytes()
    );
    if let Some(&(hotel, count)) = iceberg.qualifying.first() {
        println!("  e.g. hotel #{hotel} has {count} restaurants nearby");
    }

    // --- Query 3: asymmetric tariffs --------------------------------------
    // The Michelin link (server S) is roaming: 3×/byte. The optimizer
    // should shift traffic toward the cheap local server.
    let net = NetConfig {
        tariff_s: 3.0,
        ..NetConfig::default()
    };
    let dep_roaming = DeploymentBuilder::new(hotels, restaurants)
        .with_space(space)
        .with_buffer(800)
        .with_net(net)
        .build();
    let flat = join; // from query 1, tariffs 1:1
    let roam = SrJoin::default()
        .run(&dep_roaming, &JoinSpec::distance_join(500.0))
        .unwrap();
    let frac = |r: &JoinReport| r.link_s.total_bytes() as f64 / r.total_bytes().max(1) as f64;
    println!(
        "share of bytes on the expensive link: {:.0}% at 1:1 tariffs, {:.0}% at 1:3",
        100.0 * frac(&flat),
        100.0 * frac(&roam)
    );
    println!(
        "cost units: {:.0} (1:1) vs {:.0} (1:3) — the guide's objects must be \
         downloaded either way; the optimizer can only avoid *unnecessary* bytes",
        flat.cost_units, roam.cost_units
    );
    assert_eq!(
        flat.pairs.len(),
        roam.pairs.len(),
        "tariffs change the plan, never the answer"
    );
}
