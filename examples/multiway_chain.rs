//! The paper's future work, built from the public API: a **three-way
//! chain join** across three non-cooperative servers.
//!
//! Query: "hotels within 500 m of a restaurant that is itself within
//! 300 m of a metro station" — `Hotels ⋈₅₀₀ Restaurants ⋈₃₀₀ Metro`.
//!
//! Strategy (left-deep, on the device):
//! 1. stage 1: adaptive two-way join Hotels ⋈ Restaurants (SrJoin);
//! 2. stage 2: the *distinct matched restaurants* — already on the device
//!    from stage 1 — become one bucket ε-RANGE probe to the metro server;
//! 3. compose qualifying triples locally.
//!
//! Every stage's bytes cross metered links, so the total is the honest
//! three-server bill.
//!
//! ```text
//! cargo run --release --example multiway_chain
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_net::{Link, Request};
use asj_server::{RTreeStore, SpatialService};

fn main() {
    let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let hotels = gaussian_clusters(&SyntheticSpec::new(space, 500, 4), 1);
    let restaurants = gaussian_clusters(&SyntheticSpec::new(space, 800, 6), 2);
    let metro = gaussian_clusters(&SyntheticSpec::new(space, 120, 10), 3);

    // The device will need the matched restaurants' geometry for stage 2.
    // It saw every matched object during stage 1; keep the id → MBR map
    // the way the PDA would.
    let restaurant_mbr: HashMap<u32, Rect> = restaurants.iter().map(|o| (o.id, o.mbr)).collect();

    // --- Stage 1: Hotels ⋈ (≤500) Restaurants ---------------------------
    let dep = DeploymentBuilder::new(hotels, restaurants)
        .with_space(space)
        .with_buffer(800)
        .build();
    let stage1 = SrJoin::default()
        .run(&dep, &JoinSpec::distance_join(500.0))
        .unwrap();
    println!(
        "stage 1: {} (hotel, restaurant) pairs, {} bytes",
        stage1.pairs.len(),
        stage1.total_bytes()
    );

    // Distinct matched restaurants, in device memory.
    let mut matched: Vec<u32> = stage1.pairs.iter().map(|&(_, s)| s).collect();
    matched.sort_unstable();
    matched.dedup();

    // --- Stage 2: matched restaurants ⋈ (≤300) Metro ---------------------
    // Third non-cooperative server, own metered link.
    let metro_server = Arc::new(SpatialService::new(RTreeStore::new(metro)));
    let metro_link = Link::in_process(metro_server, NetConfig::default().packet, 1.0);
    let probes: Vec<SpatialObject> = matched
        .iter()
        .map(|&id| SpatialObject::new(id, restaurant_mbr[&id]))
        .collect();
    let buckets = metro_link
        .request(&Request::BucketEpsRange {
            probes: probes.clone(),
            eps: 300.0,
        })
        .into_buckets();

    // --- Compose triples --------------------------------------------------
    let near_metro: HashMap<u32, Vec<u32>> = probes
        .iter()
        .zip(&buckets)
        .filter(|(_, stations)| !stations.is_empty())
        .map(|(p, stations)| (p.id, stations.iter().map(|s| s.id).collect()))
        .collect();
    let mut triples = 0u64;
    let mut qualifying_hotels: Vec<u32> = Vec::new();
    for &(hotel, restaurant) in &stage1.pairs {
        if let Some(stations) = near_metro.get(&restaurant) {
            triples += stations.len() as u64;
            qualifying_hotels.push(hotel);
        }
    }
    qualifying_hotels.sort_unstable();
    qualifying_hotels.dedup();

    let stage2_bytes = metro_link.meter().snapshot().total_bytes();
    println!(
        "stage 2: {} matched restaurants probed, {} near a metro station, {} bytes",
        probes.len(),
        near_metro.len(),
        stage2_bytes
    );
    println!(
        "result: {} (hotel, restaurant, station) triples; {} distinct hotels qualify",
        triples,
        qualifying_hotels.len()
    );
    println!(
        "total three-server bill: {} bytes",
        stage1.total_bytes() + stage2_bytes
    );

    // Sanity: the semi-join reduction means stage 2 probes only matched
    // restaurants, never the full dataset.
    assert!(probes.len() <= 800);
}
