//! Network-economics explorer: how MTU and per-byte tariffs reshape the
//! byte bill of a distributed spatial join.
//!
//! Sweeps the link MTU (Ethernet 1500 vs dial-up 576) and the tariff
//! ratio between the two servers, reporting the measured wire bytes and
//! tariff-weighted cost for SrJoin. Demonstrates the packetization model
//! of Equation (1): small MTUs multiply header overhead, and query-heavy
//! plans pay disproportionately.
//!
//! ```text
//! cargo run --release --example tariff_explorer
//! ```

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_net::PacketModel;

fn main() {
    let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let r = gaussian_clusters(&SyntheticSpec::new(space, 1000, 4), 3);
    let s = gaussian_clusters(&SyntheticSpec::new(space, 1000, 4), 1003);
    let spec = JoinSpec::distance_join(100.0);

    println!("-- MTU sweep (tariffs 1:1) --------------------------------");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "MTU", "wire bytes", "packets", "queries"
    );
    for mtu in [1500u32, 1006, 576, 296] {
        let net = NetConfig {
            packet: PacketModel::new(mtu, 40),
            ..NetConfig::default()
        };
        let dep = DeploymentBuilder::new(r.clone(), s.clone())
            .with_space(space)
            .with_net(net)
            .build();
        let rep = SrJoin::default().run(&dep, &spec).unwrap();
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            mtu,
            rep.total_bytes(),
            rep.link_r.up_packets
                + rep.link_r.down_packets
                + rep.link_s.up_packets
                + rep.link_s.down_packets,
            rep.total_queries()
        );
    }

    println!("\n-- tariff sweep (MTU 1500): bR = 1, bS varies -------------");
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "bS", "cost units", "bytes via S", "S share of bytes"
    );
    for ts in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let net = NetConfig {
            tariff_s: ts,
            ..NetConfig::default()
        };
        let dep = DeploymentBuilder::new(r.clone(), s.clone())
            .with_space(space)
            .with_net(net)
            .build();
        let rep = SrJoin::default().run(&dep, &spec).unwrap();
        let s_bytes = rep.link_s.total_bytes();
        println!(
            "{:>6} {:>12.0} {:>14} {:>15.0}%",
            ts,
            rep.cost_units,
            s_bytes,
            100.0 * s_bytes as f64 / rep.total_bytes().max(1) as f64
        );
    }
    println!(
        "\nCost scales with the tariff while the byte split stays put: on this\n\
         balanced workload HBSJ downloads are unavoidable on both links, so\n\
         the optimizer has no cheaper plan shape to switch to — only NLSJ\n\
         orientation (exercised when cardinalities are asymmetric) moves\n\
         bytes between links."
    );
}
